//! Size-tiered compaction: merge similar-sized SSTables into one run.

use crate::memtable::RowEntry;
use crate::sstable::SsTable;
use crate::types::Key;
use std::collections::BTreeMap;

/// Size-tiered strategy parameters (Cassandra defaults scaled down).
#[derive(Debug, Clone, Copy)]
pub struct CompactionConfig {
    /// Minimum number of similar-sized tables before a merge triggers.
    pub min_threshold: usize,
    /// Tables within `bucket_ratio` of each other share a bucket.
    pub bucket_ratio: f64,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            min_threshold: 4,
            bucket_ratio: 2.0,
        }
    }
}

/// Picks the indices of tables to merge, or `None` when no bucket is ripe.
pub fn pick_bucket(tables: &[SsTable], cfg: &CompactionConfig) -> Option<Vec<usize>> {
    if tables.len() < cfg.min_threshold {
        return None;
    }
    // Sort indices by size, then greedily bucket neighbours whose sizes are
    // within the ratio.
    let mut by_size: Vec<usize> = (0..tables.len()).collect();
    by_size.sort_by_key(|&i| tables[i].cell_count());
    let mut bucket: Vec<usize> = Vec::new();
    for &i in &by_size {
        let fits = bucket.last().is_none_or(|&j| {
            let a = tables[j].cell_count().max(1) as f64;
            let b = tables[i].cell_count().max(1) as f64;
            b / a <= cfg.bucket_ratio
        });
        if fits {
            bucket.push(i);
        } else if bucket.len() >= cfg.min_threshold {
            break;
        } else {
            bucket.clear();
            bucket.push(i);
        }
    }
    if bucket.len() >= cfg.min_threshold {
        Some(bucket)
    } else {
        None
    }
}

/// Merges tables into a single run with last-write-wins semantics.
/// Tombstoned cells older than their row tombstone are dropped; the
/// tombstones themselves are retained (no GC grace modelled).
pub fn merge(tables: Vec<SsTable>, sequence: u64) -> SsTable {
    let mut merged: BTreeMap<Key, BTreeMap<Key, RowEntry>> = BTreeMap::new();
    for table in tables {
        for (pk, rows) in table.into_partitions() {
            let part = merged.entry(pk).or_default();
            for (ck, entry) in rows {
                match part.remove(&ck) {
                    None => {
                        part.insert(ck, entry);
                    }
                    Some(existing) => {
                        part.insert(ck, RowEntry::merge(existing, entry));
                    }
                }
            }
        }
    }
    // Drop cells shadowed by their row tombstone to reclaim space.
    let data: Vec<(Key, Vec<(Key, RowEntry)>)> = merged
        .into_iter()
        .map(|(pk, rows)| {
            let rows = rows
                .into_iter()
                .map(|(ck, mut e)| {
                    if let Some(ts) = e.deleted_at {
                        e.cells.retain(|_, c| c.write_ts > ts);
                    }
                    (ck, e)
                })
                .collect();
            (pk, rows)
        })
        .collect();
    SsTable::build(sequence, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::full_range;
    use crate::types::{Cell, Value};

    fn pk(h: i64) -> Key {
        Key(vec![Value::BigInt(h)])
    }

    fn ck(ts: i64) -> Key {
        Key(vec![Value::Timestamp(ts)])
    }

    fn table_with(seq: u64, h: i64, ts: i64, v: i32, write_ts: u64) -> SsTable {
        let mut e = RowEntry::default();
        e.upsert([("v".to_owned(), Cell::live(Value::Int(v), write_ts))]);
        SsTable::build(seq, vec![(pk(h), vec![(ck(ts), e)])])
    }

    #[test]
    fn merge_applies_lww_across_tables() {
        let old = table_with(1, 1, 5, 10, 100);
        let new = table_with(2, 1, 5, 20, 200);
        let merged = merge(vec![old, new], 3);
        assert_eq!(merged.partition_count(), 1);
        let rows = merged.read_raw(&pk(1), &full_range(), true);
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].1.cells.get("v").unwrap().value,
            Some(Value::Int(20))
        );
        // Merge order must not matter.
        let old = table_with(1, 1, 5, 10, 100);
        let new = table_with(2, 1, 5, 20, 200);
        let merged2 = merge(vec![new, old], 3);
        let rows2 = merged2.read_raw(&pk(1), &full_range(), true);
        assert_eq!(rows[0].1, rows2[0].1);
    }

    #[test]
    fn merge_keeps_distinct_rows() {
        let a = table_with(1, 1, 1, 1, 1);
        let b = table_with(2, 1, 2, 2, 1);
        let c = table_with(3, 2, 1, 3, 1);
        let merged = merge(vec![a, b, c], 4);
        assert_eq!(merged.partition_count(), 2);
        assert_eq!(merged.read_raw(&pk(1), &full_range(), true).len(), 2);
    }

    #[test]
    fn tombstone_drops_shadowed_cells_but_survives() {
        let live = table_with(1, 1, 1, 7, 10);
        let mut dead_entry = RowEntry::default();
        dead_entry.delete(20);
        let dead = SsTable::build(2, vec![(pk(1), vec![(ck(1), dead_entry)])]);
        let merged = merge(vec![live, dead], 3);
        let rows = merged.read_raw(&pk(1), &full_range(), true);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].1.cells.is_empty(), "shadowed cell reclaimed");
        assert_eq!(rows[0].1.deleted_at, Some(20));
        assert!(rows[0].1.visible().is_none());
    }

    #[test]
    fn bucket_requires_threshold_and_similar_sizes() {
        let cfg = CompactionConfig::default();
        let small: Vec<SsTable> = (0..4).map(|i| table_with(i, i as i64, 1, 1, 1)).collect();
        assert!(pick_bucket(&small[..3], &cfg).is_none(), "below threshold");
        let got = pick_bucket(&small, &cfg).unwrap();
        assert_eq!(got.len(), 4);

        // One giant table must not bucket with four tiny ones.
        let mut mixed = small;
        let big_rows: Vec<(Key, RowEntry)> = (0..1000)
            .map(|t| {
                let mut e = RowEntry::default();
                e.upsert([("v".to_owned(), Cell::live(Value::Int(1), 1))]);
                (ck(t), e)
            })
            .collect();
        mixed.push(SsTable::build(9, vec![(pk(99), big_rows)]));
        let got = pick_bucket(&mixed, &cfg).unwrap();
        assert_eq!(got.len(), 4, "giant table excluded from the bucket");
        assert!(!got.contains(&4));
    }
}
