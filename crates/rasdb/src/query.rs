//! Typed query AST executed by the coordinator, plus consistency levels.

use crate::schema::TableSchema;
use crate::types::{Key, Value};
use std::ops::Bound;

/// Tunable consistency for reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// One replica ack.
    One,
    /// Majority of replicas.
    Quorum,
    /// Every replica.
    All,
}

impl Consistency {
    /// Number of replica acks required at replication factor `rf`.
    pub fn required(&self, rf: usize) -> usize {
        match self {
            Consistency::One => 1,
            Consistency::Quorum => rf / 2 + 1,
            Consistency::All => rf,
        }
    }
}

/// A parsed literal, coerced against the schema at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Num(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
}

impl Lit {
    /// Coerces the literal to a concrete column type.
    pub fn coerce(&self, ctype: crate::schema::ColumnType) -> Option<Value> {
        use crate::schema::ColumnType as T;
        Some(match (self, ctype) {
            (Lit::Num(n), T::Int) => Value::Int(i32::try_from(*n).ok()?),
            (Lit::Num(n), T::BigInt) => Value::BigInt(*n),
            (Lit::Num(n), T::Timestamp) => Value::Timestamp(*n),
            (Lit::Num(n), T::Double) => Value::Double(*n as f64),
            (Lit::Float(f), T::Double) => Value::Double(*f),
            (Lit::Str(s), T::Text) => Value::Text(s.clone()),
            (Lit::Bool(b), T::Bool) => Value::Bool(*b),
            _ => return None,
        })
    }
}

/// Comparison operators allowed in `WHERE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One `column op literal` predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub value: Lit,
}

/// A CQL-subset statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(TableSchema),
    /// `INSERT INTO t (cols) VALUES (lits)`
    Insert {
        /// Target table.
        table: String,
        /// `(column, literal)` pairs.
        values: Vec<(String, Lit)>,
    },
    /// `SELECT * FROM t WHERE ...`
    Select(SelectStatement),
    /// `DELETE FROM t WHERE ...` (full primary key required)
    Delete {
        /// Target table.
        table: String,
        /// Equality predicates pinning the full primary key.
        predicates: Vec<Predicate>,
    },
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Source table.
    pub table: String,
    /// Projected columns; `None` = `*`.
    pub columns: Option<Vec<String>>,
    /// `WHERE` conjunction.
    pub predicates: Vec<Predicate>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// `ORDER BY <first clustering col> DESC`.
    pub descending: bool,
}

/// A fully-resolved read plan: partition key plus clustering range.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlan {
    /// Target table.
    pub table: String,
    /// Complete partition key.
    pub partition: Key,
    /// Clustering-range bounds.
    pub range: (Bound<Key>, Bound<Key>),
    /// Max rows to return.
    pub limit: Option<usize>,
    /// Reverse clustering order.
    pub descending: bool,
}

/// Builds clustering-key range bounds from an equality prefix plus an
/// optional range on the next component.
///
/// Composite clustering keys compare lexicographically, so `prefix = [a]`
/// with `next ∈ [lo, hi)` becomes `[a,lo] ..= [a,hi)` — except that an
/// equality-only prefix needs "all keys starting with prefix", which for a
/// bounded component count is expressed with sentinel bounds below.
pub fn clustering_bounds(
    prefix: Vec<Value>,
    lower: Option<(Value, bool)>, // (value, inclusive)
    upper: Option<(Value, bool)>,
    total_components: usize,
) -> (Bound<Key>, Bound<Key>) {
    let lo = match lower {
        Some((v, inclusive)) => {
            let mut k = prefix.clone();
            k.push(v);
            if inclusive {
                Bound::Included(Key(k))
            } else {
                // Exclusive lower bound on a prefix must skip every key that
                // extends the excluded value, so bound at its successor via
                // the remaining components' minimum: exclusive on the full
                // prefix key works because longer keys compare greater.
                exclusive_prefix_lower(Key(k), total_components)
            }
        }
        None if prefix.is_empty() => Bound::Unbounded,
        None => Bound::Included(Key(prefix.clone())),
    };
    let hi = match upper {
        Some((v, inclusive)) => {
            let mut k = prefix;
            k.push(v);
            if inclusive {
                inclusive_prefix_upper(Key(k), total_components)
            } else {
                Bound::Excluded(Key(k))
            }
        }
        None if prefix.is_empty() => Bound::Unbounded,
        None => inclusive_prefix_upper(Key(prefix), total_components),
    };
    (lo, hi)
}

/// For an exclusive lower bound on a key prefix: every extension of the
/// prefix must also be excluded. Vec ordering makes extensions sort
/// *greater* than the prefix, so plain `Excluded(prefix)` would wrongly
/// admit them; pad with `Value::Map(max)`? Instead we exploit that rows
/// always carry exactly `total_components` components: pad the prefix with
/// maximal values so everything extending it is still ≤ the padded key.
fn exclusive_prefix_lower(prefix: Key, total_components: usize) -> Bound<Key> {
    Bound::Excluded(pad_max(prefix, total_components))
}

/// Inclusive upper bound on a key prefix: pad with maximal components so
/// all extensions are included.
fn inclusive_prefix_upper(prefix: Key, total_components: usize) -> Bound<Key> {
    Bound::Included(pad_max(prefix, total_components))
}

fn pad_max(mut key: Key, total_components: usize) -> Key {
    while key.0.len() < total_components {
        // Map is the greatest tag; an empty map with the max tag outranks
        // every concrete value of lower tags in the cross-type order, and
        // a map value itself never appears inside clustering keys.
        key.0.push(Value::Map(std::collections::BTreeMap::new()));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn consistency_required_acks() {
        assert_eq!(Consistency::One.required(3), 1);
        assert_eq!(Consistency::Quorum.required(3), 2);
        assert_eq!(Consistency::Quorum.required(4), 3);
        assert_eq!(Consistency::Quorum.required(1), 1);
        assert_eq!(Consistency::All.required(3), 3);
    }

    #[test]
    fn literal_coercion() {
        assert_eq!(Lit::Num(5).coerce(ColumnType::Int), Some(Value::Int(5)));
        assert_eq!(
            Lit::Num(5).coerce(ColumnType::BigInt),
            Some(Value::BigInt(5))
        );
        assert_eq!(
            Lit::Num(5).coerce(ColumnType::Timestamp),
            Some(Value::Timestamp(5))
        );
        assert_eq!(
            Lit::Float(2.5).coerce(ColumnType::Double),
            Some(Value::Double(2.5))
        );
        assert_eq!(Lit::Str("x".into()).coerce(ColumnType::Int), None);
        assert_eq!(Lit::Num(i64::MAX).coerce(ColumnType::Int), None);
    }

    #[test]
    fn bounds_single_component_range() {
        let (lo, hi) = clustering_bounds(
            vec![],
            Some((Value::Timestamp(5), true)),
            Some((Value::Timestamp(9), false)),
            1,
        );
        assert_eq!(lo, Bound::Included(Key(vec![Value::Timestamp(5)])));
        assert_eq!(hi, Bound::Excluded(Key(vec![Value::Timestamp(9)])));
    }

    #[test]
    fn bounds_prefix_only_covers_extensions() {
        // Clustering key = (day, seq); pin day = 3.
        let (lo, hi) = clustering_bounds(vec![Value::BigInt(3)], None, None, 2);
        let probe = |seq: i64| Key(vec![Value::BigInt(3), Value::BigInt(seq)]);
        let contains = |k: &Key| -> bool {
            (match &lo {
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
                Bound::Unbounded => true,
            }) && (match &hi {
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
                Bound::Unbounded => true,
            })
        };
        assert!(contains(&probe(i64::MIN)));
        assert!(contains(&probe(0)));
        assert!(contains(&probe(i64::MAX)));
        assert!(!contains(&Key(vec![Value::BigInt(2), Value::BigInt(5)])));
        assert!(!contains(&Key(vec![
            Value::BigInt(4),
            Value::BigInt(i64::MIN)
        ])));
    }

    #[test]
    fn bounds_unbounded_when_no_constraints() {
        let (lo, hi) = clustering_bounds(vec![], None, None, 2);
        assert_eq!(lo, Bound::Unbounded);
        assert_eq!(hi, Bound::Unbounded);
    }
}
