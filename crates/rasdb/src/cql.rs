//! A CQL-subset text parser: `CREATE TABLE`, `INSERT`, `SELECT`, `DELETE`.
//!
//! The analytics server's query engine translates frontend requests into
//! these statements, mirroring the paper's "relays them to the backend
//! database server in the form of Cassandra Query Language (CQL) queries".

use crate::error::DbError;
use crate::query::{CmpOp, Lit, Predicate, SelectStatement, Statement};
use crate::schema::{ColumnType, TableSchema};

/// Parses one statement (an optional trailing `;` is allowed).
pub fn parse_statement(text: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(text)?;
    let mut p = Cursor { tokens, pos: 0 };
    let stmt = match p.peek_keyword().as_deref() {
        Some("create") => p.create_table()?,
        Some("insert") => p.insert()?,
        Some("select") => p.select()?,
        Some("delete") => p.delete()?,
        _ => {
            return Err(DbError::Parse(
                "expected CREATE, INSERT, SELECT, or DELETE".to_owned(),
            ))
        }
    };
    p.eat_symbol(";");
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "unexpected trailing token {:?}",
            p.peek().cloned()
        )));
    }
    Ok(stmt)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Num(i64),
    Float(f64),
    Str(String),
    Symbol(String),
}

fn tokenize(text: &str) -> Result<Vec<Token>, DbError> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | ';' | '*' | '=' => {
                out.push(Token::Symbol(c.to_string()));
                i += 1;
            }
            '<' | '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Symbol(format!("{c}=")));
                    i += 2;
                } else {
                    out.push(Token::Symbol(c.to_string()));
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(DbError::Parse("unterminated string".to_owned())),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while let Some(&d) = chars.get(i) {
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Num(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(DbError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_keyword(&self) -> Option<String> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.to_ascii_lowercase()),
            _ => None,
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), DbError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected '{sym}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn literal(&mut self) -> Result<Lit, DbError> {
        let lit = match self.peek() {
            Some(Token::Num(n)) => Lit::Num(*n),
            Some(Token::Float(f)) => Lit::Float(*f),
            Some(Token::Str(s)) => Lit::Str(s.clone()),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Lit::Bool(true),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Lit::Bool(false),
            other => return Err(DbError::Parse(format!("expected literal, found {other:?}"))),
        };
        self.pos += 1;
        Ok(lit)
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns: Vec<(String, ColumnType)> = Vec::new();
        let mut pk_cols: Vec<String> = Vec::new();
        let mut ck_cols: Vec<String> = Vec::new();
        loop {
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect_symbol("(")?;
                if self.eat_symbol("(") {
                    // Composite partition key: ((a, b), c, d)
                    loop {
                        pk_cols.push(self.ident()?);
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                } else {
                    pk_cols.push(self.ident()?);
                }
                while self.eat_symbol(",") {
                    ck_cols.push(self.ident()?);
                }
                self.expect_symbol(")")?;
            } else {
                let col = self.ident()?;
                let tname = self.ident()?;
                let ctype = ColumnType::from_cql_name(&tname)
                    .ok_or_else(|| DbError::Parse(format!("unknown type '{tname}'")))?;
                columns.push((col, ctype));
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        if pk_cols.is_empty() {
            return Err(DbError::Parse("PRIMARY KEY clause required".to_owned()));
        }

        let mut builder = TableSchema::builder(&name);
        let type_of = |col: &str| -> Result<ColumnType, DbError> {
            columns
                .iter()
                .find(|(n, _)| n == col)
                .map(|(_, t)| *t)
                .ok_or_else(|| DbError::Parse(format!("key column '{col}' not declared")))
        };
        for c in &pk_cols {
            builder = builder.partition_key(c, type_of(c)?);
        }
        for c in &ck_cols {
            builder = builder.clustering_key(c, type_of(c)?);
        }
        for (c, t) in &columns {
            if !pk_cols.contains(c) && !ck_cols.contains(c) {
                builder = builder.column(c, *t);
            }
        }
        Ok(Statement::CreateTable(
            builder.build().map_err(|e| DbError::Parse(e.to_string()))?,
        ))
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.ident()?;
        self.expect_symbol("(")?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        self.expect_keyword("values")?;
        self.expect_symbol("(")?;
        let mut lits = Vec::new();
        loop {
            lits.push(self.literal()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        if cols.len() != lits.len() {
            return Err(DbError::Parse(format!(
                "{} columns but {} values",
                cols.len(),
                lits.len()
            )));
        }
        Ok(Statement::Insert {
            table,
            values: cols.into_iter().zip(lits).collect(),
        })
    }

    fn predicates(&mut self) -> Result<Vec<Predicate>, DbError> {
        let mut preds = Vec::new();
        loop {
            let column = self.ident()?;
            let op = match self.peek() {
                Some(Token::Symbol(s)) => match s.as_str() {
                    "=" => CmpOp::Eq,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    other => return Err(DbError::Parse(format!("unsupported operator '{other}'"))),
                },
                other => {
                    return Err(DbError::Parse(format!(
                        "expected operator, found {other:?}"
                    )))
                }
            };
            self.pos += 1;
            let value = self.literal()?;
            preds.push(Predicate { column, op, value });
            if !self.eat_keyword("and") {
                break;
            }
        }
        Ok(preds)
    }

    fn select(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("select")?;
        let columns = if self.eat_symbol("*") {
            None
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(",") {
                cols.push(self.ident()?);
            }
            Some(cols)
        };
        self.expect_keyword("from")?;
        let table = self.ident()?;
        let predicates = if self.eat_keyword("where") {
            self.predicates()?
        } else {
            Vec::new()
        };
        let mut descending = false;
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let _col = self.ident()?; // the first clustering column
            if self.eat_keyword("desc") {
                descending = true;
            } else {
                self.eat_keyword("asc");
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.peek() {
                Some(Token::Num(n)) if *n > 0 => {
                    let n = *n as usize;
                    self.pos += 1;
                    Some(n)
                }
                other => {
                    return Err(DbError::Parse(format!(
                        "LIMIT needs a positive integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select(SelectStatement {
            table,
            columns,
            predicates,
            limit,
            descending,
        }))
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.ident()?;
        self.expect_keyword("where")?;
        let predicates = self.predicates()?;
        Ok(Statement::Delete { table, predicates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_composite_pk() {
        let stmt = parse_statement(
            "CREATE TABLE event_by_time (hour bigint, type text, ts timestamp, \
             source text, amount int, PRIMARY KEY ((hour, type), ts));",
        )
        .unwrap();
        let Statement::CreateTable(schema) = stmt else {
            panic!("not a create");
        };
        assert_eq!(schema.name, "event_by_time");
        assert_eq!(schema.partition_key.len(), 2);
        assert_eq!(schema.clustering_key.len(), 1);
        assert_eq!(schema.columns.len(), 2);
    }

    #[test]
    fn parses_create_table_simple_pk() {
        let stmt = parse_statement("create table t (a int, b text, primary key (a, b))").unwrap();
        let Statement::CreateTable(schema) = stmt else {
            panic!();
        };
        assert_eq!(schema.partition_key.len(), 1);
        assert_eq!(schema.clustering_key.len(), 1);
        assert!(schema.columns.is_empty());
    }

    #[test]
    fn parses_insert() {
        let stmt = parse_statement(
            "INSERT INTO t (hour, type, ts, note) VALUES (417000, 'MCE', 1501200000123, 'it''s')",
        )
        .unwrap();
        let Statement::Insert { table, values } = stmt else {
            panic!();
        };
        assert_eq!(table, "t");
        assert_eq!(values[0], ("hour".to_owned(), Lit::Num(417_000)));
        assert_eq!(values[1], ("type".to_owned(), Lit::Str("MCE".to_owned())));
        assert_eq!(values[3], ("note".to_owned(), Lit::Str("it's".to_owned())));
    }

    #[test]
    fn parses_select_with_range_order_limit() {
        let stmt = parse_statement(
            "SELECT * FROM event_by_time WHERE hour = 417000 AND type = 'MCE' \
             AND ts >= 100 AND ts < 200 ORDER BY ts DESC LIMIT 50",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.predicates.len(), 4);
        assert_eq!(sel.predicates[2].op, CmpOp::Ge);
        assert_eq!(sel.predicates[3].op, CmpOp::Lt);
        assert!(sel.descending);
        assert_eq!(sel.limit, Some(50));
    }

    #[test]
    fn parses_select_without_where() {
        let stmt = parse_statement("select * from t").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert!(sel.predicates.is_empty());
        assert!(!sel.descending);
        assert_eq!(sel.limit, None);
        assert_eq!(sel.columns, None);
    }

    #[test]
    fn parses_column_projection() {
        let stmt = parse_statement("SELECT source, amount FROM t WHERE a = 1").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(
            sel.columns,
            Some(vec!["source".to_owned(), "amount".to_owned()])
        );
    }

    #[test]
    fn parses_delete() {
        let stmt = parse_statement("DELETE FROM t WHERE a = 1 AND b = 'x' AND ts = 5").unwrap();
        let Statement::Delete { predicates, .. } = stmt else {
            panic!()
        };
        assert_eq!(predicates.len(), 3);
    }

    #[test]
    fn negative_and_float_literals() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (-5, 2.75)").unwrap();
        let Statement::Insert { values, .. } = stmt else {
            panic!()
        };
        assert_eq!(values[0].1, Lit::Num(-5));
        assert_eq!(values[1].1, Lit::Float(2.75));
    }

    #[test]
    fn boolean_literals() {
        let stmt = parse_statement("INSERT INTO t (a) VALUES (true)").unwrap();
        let Statement::Insert { values, .. } = stmt else {
            panic!()
        };
        assert_eq!(values[0].1, Lit::Bool(true));
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "",
            "DROP TABLE t",
            "SELECT FROM t",
            "INSERT INTO t (a) VALUES (1, 2)",
            "CREATE TABLE t (a int)",
            "CREATE TABLE t (a int, PRIMARY KEY (b))",
            "SELECT * FROM t WHERE a ! 1",
            "SELECT * FROM t LIMIT 0",
            "SELECT * FROM t LIMIT -3",
            "INSERT INTO t (a) VALUES ('unterminated)",
            "SELECT * FROM t extra garbage",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_statement("select * from t where A = 1 and B = 2 limit 5").is_ok());
        assert!(parse_statement("SeLeCt * FrOm t").is_ok());
    }
}
