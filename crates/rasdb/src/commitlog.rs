//! Append-only commit log: every mutation is recorded before it touches
//! the memtable, so a node restart can replay its state.

use crate::types::{Cell, Key, Value};
use parking_lot::Mutex;

/// One durable mutation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    /// Target table.
    pub table: String,
    /// Partition key.
    pub partition: Key,
    /// Clustering key.
    pub clustering: Key,
    /// Cells to upsert (empty for pure row deletes).
    pub cells: Vec<(String, Cell)>,
    /// Row tombstone timestamp, if this mutation deletes the row.
    pub row_delete: Option<u64>,
}

impl Mutation {
    /// Builds an upsert mutation with a single write timestamp.
    pub fn upsert(
        table: impl Into<String>,
        partition: Key,
        clustering: Key,
        values: Vec<(String, Value)>,
        write_ts: u64,
    ) -> Mutation {
        Mutation {
            table: table.into(),
            partition,
            clustering,
            cells: values
                .into_iter()
                .map(|(n, v)| (n, Cell::live(v, write_ts)))
                .collect(),
            row_delete: None,
        }
    }

    /// Builds a row-delete mutation.
    pub fn delete(
        table: impl Into<String>,
        partition: Key,
        clustering: Key,
        write_ts: u64,
    ) -> Mutation {
        Mutation {
            table: table.into(),
            partition,
            clustering,
            cells: Vec::new(),
            row_delete: Some(write_ts),
        }
    }

    /// Approximate record weight in cells (log sizing).
    pub fn weight(&self) -> usize {
        self.cells.len().max(1)
    }
}

/// The per-node commit log.
///
/// Segments rotate at `segment_limit` records; segments older than the last
/// flush point are discarded (`truncate`), mirroring how a real commit log
/// reclaims space once the memtable is durable in SSTables.
#[derive(Debug)]
pub struct CommitLog {
    inner: Mutex<LogInner>,
    segment_limit: usize,
}

#[derive(Debug, Default)]
struct LogInner {
    segments: Vec<Vec<Mutation>>,
    appended: u64,
}

impl CommitLog {
    /// Creates a log with the given segment size.
    pub fn new(segment_limit: usize) -> CommitLog {
        CommitLog {
            inner: Mutex::new(LogInner {
                segments: vec![Vec::new()],
                appended: 0,
            }),
            segment_limit: segment_limit.max(1),
        }
    }

    /// Appends a mutation; returns its global sequence number.
    pub fn append(&self, m: Mutation) -> u64 {
        let mut inner = self.inner.lock();
        if inner
            .segments
            .last()
            .is_some_and(|s| s.len() >= self.segment_limit)
        {
            inner.segments.push(Vec::new());
        }
        inner.segments.last_mut().expect("segment").push(m);
        inner.appended += 1;
        inner.appended
    }

    /// Drops all closed segments (called after a successful flush). The
    /// open segment is kept: records after the flush point are still only
    /// in the memtable.
    pub fn truncate_flushed(&self) {
        let mut inner = self.inner.lock();
        let open = inner.segments.pop().unwrap_or_default();
        inner.segments.clear();
        inner.segments.push(open);
    }

    /// Replays every retained mutation in order (restart recovery).
    pub fn replay(&self) -> Vec<Mutation> {
        let inner = self.inner.lock();
        inner.segments.iter().flatten().cloned().collect()
    }

    /// Total mutations ever appended.
    pub fn appended(&self) -> u64 {
        self.inner.lock().appended
    }

    /// Currently retained record count.
    pub fn retained(&self) -> usize {
        self.inner.lock().segments.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: i64) -> Mutation {
        Mutation::upsert(
            "t",
            Key(vec![Value::BigInt(i)]),
            Key(vec![Value::Timestamp(i)]),
            vec![("v".to_owned(), Value::Int(i as i32))],
            i as u64,
        )
    }

    #[test]
    fn append_and_replay_preserve_order() {
        let log = CommitLog::new(10);
        for i in 0..25 {
            log.append(m(i));
        }
        let replayed = log.replay();
        assert_eq!(replayed.len(), 25);
        assert_eq!(replayed[7], m(7));
        assert_eq!(log.appended(), 25);
    }

    #[test]
    fn segments_rotate() {
        let log = CommitLog::new(4);
        for i in 0..10 {
            log.append(m(i));
        }
        assert_eq!(log.retained(), 10);
        log.truncate_flushed();
        // Two full segments dropped; the open one (2 records) remains.
        assert_eq!(log.retained(), 2);
        assert_eq!(log.appended(), 10);
    }

    #[test]
    fn truncate_on_empty_log_is_safe() {
        let log = CommitLog::new(4);
        log.truncate_flushed();
        assert_eq!(log.retained(), 0);
        log.append(m(1));
        assert_eq!(log.retained(), 1);
    }

    #[test]
    fn delete_mutation_shape() {
        let d = Mutation::delete("t", Key(vec![]), Key(vec![]), 9);
        assert!(d.cells.is_empty());
        assert_eq!(d.row_delete, Some(9));
        assert_eq!(d.weight(), 1);
    }
}
