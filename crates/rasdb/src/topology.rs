//! Live topology changes: fault plans, transition bookkeeping, and status.
//!
//! A join or decommission moves token ranges between nodes while the
//! cluster keeps serving traffic. The streaming itself lives in
//! `cluster.rs`; this module holds the deterministic fault-injection plan
//! (mirroring logbus's `FaultPlan` builder), the runtime fault state a
//! single transition threads through its chunk loop, and the report/status
//! types surfaced to callers and the query engine.

use crate::ring::NodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Chunk retry budget when the plan does not override it.
pub const DEFAULT_MAX_CHUNK_ATTEMPTS: u32 = 4;

/// Deterministic faults injected into range streaming. All triggers count
/// chunk-send attempts (1-based); `0` disables a trigger. Plans are
/// sequence-based, not random, so every test run exercises the same
/// recovery path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopologyFaultPlan {
    /// Drop every Nth chunk-send attempt in flight (receiver never sees
    /// it; the sender retries). `0` disables.
    pub drop_chunk_every: u64,
    /// Corrupt every Nth chunk-send attempt (one byte flipped in flight;
    /// the receiver's checksum rejects it and the sender retries). `0`
    /// disables.
    pub corrupt_chunk_every: u64,
    /// Stall every Nth chunk-send attempt by [`slow_chunk`](Self::slow_chunk).
    /// `0` disables.
    pub slow_chunk_every: u64,
    /// Stall duration for slow chunks.
    pub slow_chunk: Duration,
    /// Crash one donor (the first up old-owner) when this chunk-send
    /// attempt number comes up; the stream must re-source from the
    /// remaining quorum. One-shot. `0` disables.
    pub donor_crash_at_chunk: u64,
    /// Crash and immediately restart the receiving node after this many
    /// chunks have been acked; already-acked chunks must survive via its
    /// commit log. One-shot. `0` disables.
    pub joiner_crash_at_chunk: u64,
    /// Per-chunk attempt budget before the transition aborts. `0` means
    /// [`DEFAULT_MAX_CHUNK_ATTEMPTS`].
    pub max_chunk_attempts: u32,
}

impl TopologyFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> TopologyFaultPlan {
        TopologyFaultPlan::default()
    }

    /// Drops every `n`th chunk-send attempt.
    pub fn drop_chunk_every(mut self, n: u64) -> TopologyFaultPlan {
        self.drop_chunk_every = n;
        self
    }

    /// Corrupts every `n`th chunk-send attempt in flight.
    pub fn corrupt_chunk_every(mut self, n: u64) -> TopologyFaultPlan {
        self.corrupt_chunk_every = n;
        self
    }

    /// Stalls every `n`th chunk-send attempt by `d`.
    pub fn slow_chunk_every(mut self, n: u64, d: Duration) -> TopologyFaultPlan {
        self.slow_chunk_every = n;
        self.slow_chunk = d;
        self
    }

    /// Crashes a donor at chunk-send attempt `n` (one-shot).
    pub fn donor_crash_at(mut self, n: u64) -> TopologyFaultPlan {
        self.donor_crash_at_chunk = n;
        self
    }

    /// Crashes and restarts the receiver after `n` acked chunks (one-shot).
    pub fn joiner_crash_at(mut self, n: u64) -> TopologyFaultPlan {
        self.joiner_crash_at_chunk = n;
        self
    }

    /// Overrides the per-chunk attempt budget.
    pub fn max_chunk_attempts(mut self, n: u32) -> TopologyFaultPlan {
        self.max_chunk_attempts = n;
        self
    }

    /// The attempt budget this plan grants each chunk.
    pub fn effective_attempts(&self) -> u32 {
        if self.max_chunk_attempts == 0 {
            DEFAULT_MAX_CHUNK_ATTEMPTS
        } else {
            self.max_chunk_attempts
        }
    }
}

/// Runtime fault state for one transition. Counts chunk-send attempts and
/// acked chunks across the whole stream so `every_n` triggers fire at the
/// same global positions regardless of how partitions are chunked.
#[derive(Debug, Default)]
pub(crate) struct StreamFaults {
    plan: TopologyFaultPlan,
    /// Chunk-send attempts so far (1-based after `next_attempt`).
    attempt_seq: AtomicU64,
    /// Chunks acked so far.
    acked: AtomicU64,
    donor_crashed: AtomicBool,
    joiner_crashed: AtomicBool,
}

impl StreamFaults {
    pub(crate) fn new(plan: TopologyFaultPlan) -> StreamFaults {
        StreamFaults {
            plan,
            ..StreamFaults::default()
        }
    }

    pub(crate) fn plan(&self) -> &TopologyFaultPlan {
        &self.plan
    }

    fn count(kind: &str) {
        let r = telemetry::global();
        r.counter("rasdb.topology.injected_faults").incr(1);
        r.counter(&format!("rasdb.topology.injected_faults.{kind}"))
            .incr(1);
    }

    /// Allocates the next chunk-send attempt number (1-based).
    pub(crate) fn next_attempt(&self) -> u64 {
        self.attempt_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether this attempt is dropped in flight.
    pub(crate) fn should_drop(&self, attempt: u64) -> bool {
        let n = self.plan.drop_chunk_every;
        let hit = n > 0 && attempt.is_multiple_of(n);
        if hit {
            StreamFaults::count("chunk_drop");
        }
        hit
    }

    /// Whether this attempt is corrupted in flight.
    pub(crate) fn should_corrupt(&self, attempt: u64) -> bool {
        let n = self.plan.corrupt_chunk_every;
        let hit = n > 0 && attempt.is_multiple_of(n);
        if hit {
            StreamFaults::count("chunk_corrupt");
        }
        hit
    }

    /// Stall duration for this attempt, if any.
    pub(crate) fn slow_for(&self, attempt: u64) -> Option<Duration> {
        let n = self.plan.slow_chunk_every;
        if n > 0 && attempt.is_multiple_of(n) && !self.plan.slow_chunk.is_zero() {
            StreamFaults::count("slow_chunk");
            Some(self.plan.slow_chunk)
        } else {
            None
        }
    }

    /// Whether a donor crash fires on this attempt (one-shot).
    pub(crate) fn donor_crash_due(&self, attempt: u64) -> bool {
        let n = self.plan.donor_crash_at_chunk;
        if n > 0
            && attempt >= n
            && self
                .donor_crashed
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            StreamFaults::count("donor_crash");
            return true;
        }
        false
    }

    /// Records an acked chunk; returns true when the receiver crash fires
    /// right after this ack (one-shot).
    pub(crate) fn ack_and_check_joiner_crash(&self) -> bool {
        let acked = self.acked.fetch_add(1, Ordering::SeqCst) + 1;
        let n = self.plan.joiner_crash_at_chunk;
        if n > 0
            && acked >= n
            && self
                .joiner_crashed
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            StreamFaults::count("joiner_crash");
            return true;
        }
        false
    }
}

/// Which way a transition moves ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A new node streams its ranges in.
    Join,
    /// A leaving node hands its ranges off.
    Decommission,
}

impl TransitionKind {
    /// Stable lowercase name for status strings and telemetry.
    pub fn as_str(&self) -> &'static str {
        match self {
            TransitionKind::Join => "join",
            TransitionKind::Decommission => "decommission",
        }
    }
}

/// Summary of one committed transition, returned by
/// `Cluster::join_node` / `Cluster::decommission_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionReport {
    /// Join or decommission.
    pub kind: TransitionKind,
    /// The node that joined or left.
    pub node: NodeId,
    /// Distinct partitions that moved to at least one new owner.
    pub partitions_streamed: u64,
    /// Rows delivered over the stream (acked chunks only).
    pub rows_streamed: u64,
    /// Chunks acked.
    pub chunks_streamed: u64,
    /// Chunk attempts retried after drops/corruption/down receivers.
    pub chunk_retries: u64,
    /// Times the stream resumed from its last acked chunk after a crash.
    pub stream_resumes: u64,
    /// Hints re-applied to new owners at commit.
    pub hints_rerouted: u64,
    /// Topology epoch after the commit.
    pub epoch: u64,
}

/// One member row in [`TopologyStatus`]. Retired nodes stay listed (down,
/// out of the ring) so ids remain interpretable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberStatus {
    /// Node id.
    pub id: NodeId,
    /// Liveness flag.
    pub up: bool,
    /// Whether the node currently owns ring ranges.
    pub in_ring: bool,
}

/// Point-in-time topology summary for the `topology` engine op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyStatus {
    /// Current topology epoch (cache invalidation tag).
    pub epoch: u64,
    /// Configured replication factor.
    pub replication_factor: usize,
    /// `"stable"`, `"joining(<id>)"`, or `"decommissioning(<id>)"`.
    pub state: String,
    /// Every node slot ever created, in id order.
    pub members: Vec<MemberStatus>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let p = TopologyFaultPlan::none()
            .drop_chunk_every(3)
            .corrupt_chunk_every(5)
            .slow_chunk_every(2, Duration::from_millis(1))
            .donor_crash_at(7)
            .joiner_crash_at(4)
            .max_chunk_attempts(9);
        assert_eq!(p.drop_chunk_every, 3);
        assert_eq!(p.corrupt_chunk_every, 5);
        assert_eq!(p.slow_chunk_every, 2);
        assert_eq!(p.donor_crash_at_chunk, 7);
        assert_eq!(p.joiner_crash_at_chunk, 4);
        assert_eq!(p.effective_attempts(), 9);
        assert_eq!(
            TopologyFaultPlan::none().effective_attempts(),
            DEFAULT_MAX_CHUNK_ATTEMPTS
        );
    }

    #[test]
    fn zero_disables_every_trigger() {
        let f = StreamFaults::new(TopologyFaultPlan::none());
        for attempt in 1..=20 {
            assert!(!f.should_drop(attempt));
            assert!(!f.should_corrupt(attempt));
            assert!(f.slow_for(attempt).is_none());
            assert!(!f.donor_crash_due(attempt));
        }
        for _ in 0..20 {
            assert!(!f.ack_and_check_joiner_crash());
        }
    }

    #[test]
    fn periodic_triggers_fire_on_schedule() {
        let f = StreamFaults::new(TopologyFaultPlan::none().drop_chunk_every(3));
        let fired: Vec<u64> = (1..=9).filter(|a| f.should_drop(*a)).collect();
        assert_eq!(fired, vec![3, 6, 9]);
    }

    #[test]
    fn crash_triggers_are_one_shot() {
        let f = StreamFaults::new(
            TopologyFaultPlan::none()
                .donor_crash_at(2)
                .joiner_crash_at(2),
        );
        assert!(!f.donor_crash_due(1));
        assert!(f.donor_crash_due(2));
        assert!(!f.donor_crash_due(3), "donor crash must fire exactly once");
        assert!(!f.ack_and_check_joiner_crash());
        assert!(f.ack_and_check_joiner_crash());
        assert!(
            !f.ack_and_check_joiner_crash(),
            "joiner crash must fire exactly once"
        );
    }

    #[test]
    fn attempt_numbers_are_monotonic() {
        let f = StreamFaults::new(TopologyFaultPlan::none());
        assert_eq!(f.next_attempt(), 1);
        assert_eq!(f.next_attempt(), 2);
        assert_eq!(f.next_attempt(), 3);
    }
}
