//! The cluster: a masterless ring of storage nodes plus coordinator logic
//! (replication, consistency levels, hinted handoff, read repair) and live
//! topology changes (join/decommission with fault-tolerant range streaming).

use crate::cache::{block_key, rows_footprint, BlockEntry, LruCache};
use crate::commitlog::Mutation;
use crate::cql;
use crate::error::DbError;
use crate::memtable::RowEntry;
use crate::node::{NodeConfig, StorageNode};
use crate::partitioner::{token_for, Token};
use crate::query::{
    clustering_bounds, CmpOp, Consistency, Predicate, ReadPlan, SelectStatement, Statement,
};
use crate::ring::{NodeId, Ring};
use crate::schema::{KeyRole, TableSchema};
use crate::sstable::{encode_stream_chunk, stream_chunk_checksum};
use crate::stats::{CacheStats, CoordinatorStats, StatsSnapshot, TopologyStats};
use crate::topology::{
    MemberStatus, StreamFaults, TopologyFaultPlan, TopologyStatus, TransitionKind, TransitionReport,
};
use crate::types::{Key, Row, Value};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Replication factor.
    pub replication_factor: usize,
    /// Virtual nodes per physical node.
    pub vnodes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication_factor: 3,
            vnodes: 16,
        }
    }
}

/// Result of a `SELECT` through CQL: rows or a write acknowledgment.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// Rows from a select.
    Rows(Vec<Row>),
    /// Statement applied (insert/delete/create).
    Applied,
}

/// Default per-read deadline before a speculative retry is sent to the
/// next replica (see [`Cluster::read_multi`]).
pub const DEFAULT_SPECULATIVE_TIMEOUT: Duration = Duration::from_millis(5);

/// Default per-node hinted-handoff queue cap (see [`Cluster::set_hint_cap`]).
pub const DEFAULT_HINT_CAP: u64 = 8192;

/// Default byte budget for the partition-block cache (see
/// [`Cluster::set_block_cache_budget`]).
pub const DEFAULT_BLOCK_CACHE_BYTES: usize = 32 << 20;

/// Suggested client back-off returned with [`DbError::TopologyChanging`]
/// when an admin op is rejected because a transition is already in flight.
pub const TOPOLOGY_RETRY_AFTER_MS: u64 = 100;

/// Default rows per range-streaming chunk (see
/// [`Cluster::set_stream_chunk_rows`]).
pub const DEFAULT_STREAM_CHUNK_ROWS: u64 = 128;

/// Combined `(table, partition)` key for the data-version map.
fn version_key(table: &str, partition: &Key) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.len() + 20);
    out.extend_from_slice(&(table.len() as u32).to_le_bytes());
    out.extend_from_slice(table.as_bytes());
    out.extend_from_slice(&partition.encode());
    out
}

/// A unit of coordinator work bound for one storage node's queue.
type CoordJob = Box<dyn FnOnce() + Send + 'static>;

/// One replica's answer to a scatter read: `(plan index, replica, raw rows
/// or None when the node was down)`.
type ReplicaResponse = (usize, NodeId, Option<Vec<(Key, RowEntry)>>);

/// Persistent coordinator worker pool: one thread + queue per storage
/// node, so a slow or down node backs up only its own queue and can never
/// stall reads bound for healthy nodes. The pool grows when nodes join a
/// live cluster; slots are never removed (decommissioned nodes keep their
/// idle worker, matching their permanently reserved `NodeId`).
struct CoordinatorPool {
    queues: RwLock<Vec<Sender<CoordJob>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl CoordinatorPool {
    fn new(nodes: usize) -> CoordinatorPool {
        let pool = CoordinatorPool {
            queues: RwLock::new(Vec::with_capacity(nodes)),
            handles: Mutex::new(Vec::with_capacity(nodes)),
        };
        pool.ensure(nodes);
        pool
    }

    /// Grows the pool to at least `nodes` workers.
    fn ensure(&self, nodes: usize) {
        if self.queues.read().len() >= nodes {
            return;
        }
        let mut queues = self.queues.write();
        let mut handles = self.handles.lock();
        while queues.len() < nodes {
            let id = queues.len();
            let (tx, rx) = unbounded::<CoordJob>();
            queues.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rasdb-coord-{id}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn coordinator worker"),
            );
        }
    }

    fn submit(&self, node: NodeId, job: CoordJob) {
        self.queues.read()[node.0]
            .send(job)
            .expect("coordinator worker alive");
    }
}

impl Drop for CoordinatorPool {
    fn drop(&mut self) {
        // Closing the queues ends the worker loops.
        self.queues.write().clear();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// The ring plus any in-flight membership transition, swapped atomically
/// under one lock so every coordinator snapshot sees a consistent pair.
struct TopologyState {
    ring: Ring,
    transition: Option<Transition>,
}

/// One in-flight join or decommission.
struct Transition {
    kind: TransitionKind,
    node: NodeId,
    /// The ring the cluster converges to when the transition commits.
    target_ring: Ring,
}

/// An in-process distributed database.
pub struct Cluster {
    /// Ring + in-flight transition. Lock ordering: `topology` before
    /// `nodes`; neither is ever held across range streaming.
    topology: RwLock<TopologyState>,
    /// Every node slot ever created, indexed by `NodeId`. Append-only:
    /// decommissioned nodes are retired in place so ids stay stable.
    nodes: RwLock<Vec<Arc<StorageNode>>>,
    node_cfg: NodeConfig,
    schemas: RwLock<HashMap<String, TableSchema>>,
    clock: AtomicU64,
    hints: Mutex<HashMap<NodeId, VecDeque<Mutation>>>,
    hint_cap: AtomicU64,
    /// Scatter-gather worker pool, spawned on first `read_multi`.
    coordinator: OnceLock<CoordinatorPool>,
    coord_stats: CoordinatorStats,
    speculative_timeout_us: AtomicU64,
    /// Monotonic per-partition data versions: bumped after every mutation
    /// (including repairs), so cached reads can be validated exactly.
    versions: Mutex<HashMap<Vec<u8>, u64>>,
    version_counter: AtomicU64,
    /// Bumped whenever replica visibility changes (node down/up), which can
    /// change what a read at a given consistency level observes.
    epoch: AtomicU64,
    block_cache: Mutex<LruCache<BlockEntry>>,
    block_cache_stats: CacheStats,
    topo_stats: TopologyStats,
    stream_chunk_rows: AtomicU64,
}

impl Cluster {
    /// Builds a cluster with default node tuning.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        Cluster::with_node_config(cfg, NodeConfig::default())
    }

    /// Builds a cluster with explicit node tuning.
    pub fn with_node_config(cfg: ClusterConfig, node_cfg: NodeConfig) -> Cluster {
        let ring = Ring::new(cfg.nodes, cfg.vnodes, cfg.replication_factor);
        let nodes = (0..cfg.nodes)
            .map(|i| Arc::new(StorageNode::new(NodeId(i), node_cfg)))
            .collect();
        Cluster {
            topology: RwLock::new(TopologyState {
                ring,
                transition: None,
            }),
            nodes: RwLock::new(nodes),
            node_cfg,
            schemas: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(1),
            hints: Mutex::new(HashMap::new()),
            hint_cap: AtomicU64::new(DEFAULT_HINT_CAP),
            coordinator: OnceLock::new(),
            coord_stats: CoordinatorStats::default(),
            speculative_timeout_us: AtomicU64::new(DEFAULT_SPECULATIVE_TIMEOUT.as_micros() as u64),
            versions: Mutex::new(HashMap::new()),
            version_counter: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            block_cache: Mutex::new(LruCache::new(DEFAULT_BLOCK_CACHE_BYTES)),
            block_cache_stats: CacheStats::new("block"),
            topo_stats: TopologyStats::default(),
            stream_chunk_rows: AtomicU64::new(DEFAULT_STREAM_CHUNK_ROWS),
        }
    }

    /// The data version of one partition: strictly increases with every
    /// mutation that may have touched it (writes, deletes, read repairs).
    /// `0` means never written. Cache layers snapshot this *before* reading
    /// and re-validate on every lookup, so a matching version proves the
    /// cached rows are still current.
    pub fn data_version(&self, table: &str, partition: &Key) -> u64 {
        self.versions
            .lock()
            .get(&version_key(table, partition))
            .copied()
            .unwrap_or(0)
    }

    /// Topology epoch: bumped whenever a node goes down or comes back up
    /// (hint replay included), and exactly once when a join or decommission
    /// commits. Any cached read is invalidated by an epoch change because
    /// replica visibility or placement may have shifted. Aborted
    /// transitions do NOT bump it — nothing moved, so no cache entry went
    /// stale.
    pub fn topology_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn bump_version(&self, table: &str, partition: &Key) {
        let v = self.version_counter.fetch_add(1, Ordering::SeqCst) + 1;
        self.versions
            .lock()
            .insert(version_key(table, partition), v);
    }

    /// Replaces the partition-block cache byte budget (default
    /// [`DEFAULT_BLOCK_CACHE_BYTES`]); `0` disables the cache and drops
    /// every entry. Benches comparing raw read paths should disable it.
    pub fn set_block_cache_budget(&self, bytes: usize) {
        let evicted = self.block_cache.lock().set_budget(bytes);
        self.block_cache_stats.record_evictions(evicted);
    }

    /// Hit/miss/evict/invalidate counters for the partition-block cache.
    pub fn block_cache_stats(&self) -> &CacheStats {
        &self.block_cache_stats
    }

    /// Looks up a block, validating its version and epoch tags; stale
    /// entries are dropped and count as both an invalidation and a miss.
    fn block_cache_get(&self, key: &[u8], version: u64, epoch: u64) -> Option<Vec<Row>> {
        let mut cache = self.block_cache.lock();
        if cache.budget() == 0 {
            return None;
        }
        let hit = match cache.get(key) {
            Some(e) if e.version == version && e.epoch == epoch => Some(e.rows.clone()),
            Some(_) => {
                cache.remove(key);
                self.block_cache_stats.record_invalidations(1);
                None
            }
            None => None,
        };
        drop(cache);
        match hit {
            Some(rows) => {
                self.block_cache_stats.record_hit();
                Some(rows)
            }
            None => {
                self.block_cache_stats.record_miss();
                None
            }
        }
    }

    fn block_cache_insert(&self, key: Vec<u8>, rows: &[Row], version: u64, epoch: u64) {
        let mut cache = self.block_cache.lock();
        if cache.budget() == 0 {
            return;
        }
        let bytes = rows_footprint(rows) + key.len();
        let entry = BlockEntry {
            rows: rows.to_vec(),
            version,
            epoch,
        };
        let evicted = cache.insert(key, entry, bytes);
        drop(cache);
        self.block_cache_stats.record_evictions(evicted);
    }

    /// The scatter-gather worker pool, spawned lazily so short-lived
    /// clusters (unit tests, property-test shrink iterations) never pay
    /// for threads they don't use.
    fn coordinator(&self) -> &CoordinatorPool {
        let pool = self
            .coordinator
            .get_or_init(|| CoordinatorPool::new(self.node_count()));
        // Nodes may have joined since the pool was spawned.
        pool.ensure(self.node_count());
        pool
    }

    /// Coordinator read-path counters (replica skips, speculative retries,
    /// scatter batches).
    pub fn coordinator_stats(&self) -> &CoordinatorStats {
        &self.coord_stats
    }

    /// Overrides the per-read deadline after which `read_multi` sends a
    /// speculative retry to the next replica.
    pub fn set_speculative_timeout(&self, d: Duration) {
        self.speculative_timeout_us
            .store(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// A snapshot of the token ring (placement inspection, locality-aware
    /// scheduling). The clone decouples callers from topology changes: a
    /// join or decommission swaps the live ring out from under them.
    pub fn ring(&self) -> Ring {
        self.topology.read().ring.clone()
    }

    /// Number of node slots ever created (including retired ones), i.e.
    /// `NodeId`s run `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Number of current ring members (excludes retired slots).
    pub fn member_count(&self) -> usize {
        self.topology.read().ring.node_count()
    }

    /// Access to a node (tests, stats, locality scans).
    pub fn node(&self, id: NodeId) -> Arc<StorageNode> {
        self.node_arc(id)
    }

    fn node_arc(&self, id: NodeId) -> Arc<StorageNode> {
        Arc::clone(&self.nodes.read()[id.0])
    }

    /// Registers a table on every node.
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        let mut schemas = self.schemas.write();
        if schemas.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        for node in self.nodes.read().iter() {
            node.create_table(&schema.name);
        }
        schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Looks up a table schema.
    pub fn schema(&self, table: &str) -> Option<TableSchema> {
        self.schemas.read().get(table).cloned()
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.schemas.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Next logical write timestamp.
    fn next_write_ts(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts one row.
    pub fn insert(
        &self,
        table: &str,
        values: Vec<(&str, Value)>,
        consistency: Consistency,
    ) -> Result<(), DbError> {
        let owned: Vec<(String, Value)> =
            values.into_iter().map(|(n, v)| (n.to_owned(), v)).collect();
        self.insert_owned(table, owned, consistency)
    }

    /// Inserts one row with owned column names.
    pub fn insert_owned(
        &self,
        table: &str,
        values: Vec<(String, Value)>,
        consistency: Consistency,
    ) -> Result<(), DbError> {
        let schema = self
            .schema(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        schema.validate_insert(&values)?;
        let (pk, ck, cells) = schema.split_insert(values);
        let mutation = Mutation::upsert(table, Key(pk), Key(ck), cells, self.next_write_ts());
        self.write_mutation(mutation, consistency)
    }

    /// Applies a batch of pre-validated inserts (ETL fast path). Each item
    /// is `(column, value)` pairs; the whole batch shares one consistency
    /// level. Returns the number applied.
    pub fn insert_batch(
        &self,
        table: &str,
        batch: Vec<Vec<(String, Value)>>,
        consistency: Consistency,
    ) -> Result<usize, DbError> {
        let _span = telemetry::span!("rasdb.coordinator.batch");
        let schema = self
            .schema(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        let mut applied = 0;
        for values in batch {
            schema.validate_insert(&values)?;
            let (pk, ck, cells) = schema.split_insert(values);
            let m = Mutation::upsert(table, Key(pk), Key(ck), cells, self.next_write_ts());
            self.write_mutation(m, consistency)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Deletes one clustered row.
    pub fn delete(
        &self,
        table: &str,
        partition: Vec<Value>,
        clustering: Vec<Value>,
        consistency: Consistency,
    ) -> Result<(), DbError> {
        if self.schema(table).is_none() {
            return Err(DbError::NoSuchTable(table.to_owned()));
        }
        let m = Mutation::delete(table, Key(partition), Key(clustering), self.next_write_ts());
        self.write_mutation(m, consistency)
    }

    /// Hinted handoff: remember the mutation for a node that missed it.
    /// The queue is capped; at capacity the *oldest* hint is dropped (LWW
    /// means newer mutations supersede it anyway) and counted, so a long
    /// outage degrades to read repair instead of growing coordinator
    /// memory without bound.
    fn queue_hint(&self, id: NodeId, m: &Mutation) {
        let cap = self.hint_cap.load(Ordering::Relaxed) as usize;
        let mut hints = self.hints.lock();
        let queue = hints.entry(id).or_default();
        while queue.len() >= cap.max(1) {
            queue.pop_front();
            self.coord_stats.record_hint_dropped();
        }
        queue.push_back(m.clone());
    }

    fn write_mutation(&self, m: Mutation, consistency: Consistency) -> Result<(), DbError> {
        let _span = telemetry::span!("rasdb.coordinator.write");
        let token = token_for(&m.partition);
        // One topology snapshot yields both replica sets, so a transition
        // committing mid-write can never make the coordinator miss both
        // the old and the new owner of a range.
        let (replicas, gainers) = {
            let topo = self.topology.read();
            let replicas = topo.ring.replicas(token);
            let gainers: Vec<NodeId> = match &topo.transition {
                Some(t) => t
                    .target_ring
                    .replicas(token)
                    .into_iter()
                    .filter(|n| !replicas.contains(n))
                    .collect(),
                None => Vec::new(),
            };
            (replicas, gainers)
        };
        let required = consistency.required(replicas.len());
        let mut acks = 0;
        for id in &replicas {
            if self.node_arc(*id).apply(&m) {
                acks += 1;
            } else {
                self.queue_hint(*id, &m);
            }
        }
        // Double-write window: while a transition is in flight, every
        // future owner of the range receives the mutation too, so commit
        // finds nothing missing. These writes never count toward the
        // client's consistency level — the old ring stays authoritative
        // until commit — and a miss (gainer down) is hinted and drained
        // synchronously at commit.
        for id in &gainers {
            if !self.node_arc(*id).apply(&m) {
                self.queue_hint(*id, &m);
            }
        }
        // Bump *after* the replica applies so a concurrent reader that
        // snapshotted the old version cannot cache post-write rows under a
        // still-current tag. Bumped even on the Unavailable path: some
        // replicas may have applied the mutation.
        self.bump_version(&m.table, &m.partition);
        if acks >= required {
            Ok(())
        } else {
            Err(DbError::Unavailable {
                required,
                received: acks,
            })
        }
    }

    /// Marks a node down (failure injection).
    pub fn take_node_down(&self, id: NodeId) {
        self.node_arc(id).set_up(false);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Brings a node back up and replays its hints. A retired node cannot
    /// come back: this is a no-op (no epoch bump, hints left untouched).
    pub fn bring_node_up(&self, id: NodeId) {
        let node = self.node_arc(id);
        if node.is_retired() {
            return;
        }
        node.set_up(true);
        let hints = self.hints.lock().remove(&id).unwrap_or_default();
        for m in hints {
            node.apply(&m);
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Pending hint count for a node (tests).
    pub fn pending_hints(&self, id: NodeId) -> usize {
        self.hints.lock().get(&id).map_or(0, VecDeque::len)
    }

    /// Caps the per-node hinted-handoff queue (default
    /// [`DEFAULT_HINT_CAP`]). At capacity the oldest hints are dropped and
    /// counted in [`CoordinatorStats::hints_dropped`].
    pub fn set_hint_cap(&self, cap: usize) {
        self.hint_cap.store(cap.max(1) as u64, Ordering::Relaxed);
    }

    /// Starts a fluent select.
    pub fn select<'c>(&'c self, table: &str) -> SelectBuilder<'c> {
        SelectBuilder {
            cluster: self,
            table: table.to_owned(),
            partition: Vec::new(),
            prefix: Vec::new(),
            lower: None,
            upper: None,
            limit: None,
            descending: false,
        }
    }

    /// Validates a plan against the schema and resolves its replica set
    /// and quorum size.
    fn plan_replicas(
        &self,
        plan: &ReadPlan,
        consistency: Consistency,
    ) -> Result<(Vec<NodeId>, usize), DbError> {
        let schema = self
            .schema(&plan.table)
            .ok_or_else(|| DbError::NoSuchTable(plan.table.clone()))?;
        if plan.partition.0.len() != schema.partition_key.len() {
            return Err(DbError::BadQuery(format!(
                "partition key for '{}' needs {} components, got {}",
                plan.table,
                schema.partition_key.len(),
                plan.partition.0.len()
            )));
        }
        // Reads route via the *old* ring for the whole transition window:
        // gainers may still be mid-stream, so only the pre-change replica
        // set is guaranteed complete until commit swaps the ring.
        let replicas = self
            .topology
            .read()
            .ring
            .replicas(token_for(&plan.partition));
        let required = consistency.required(replicas.len());
        Ok((replicas, required))
    }

    /// Advances `cursor` past known-down replicas (counting each skip) and
    /// returns the next replica worth dispatching to. Shared by the
    /// sequential read loop and the scatter-gather dispatcher so both paths
    /// select replicas — and feed the block cache — identically.
    fn next_up_replica(&self, replicas: &[NodeId], cursor: &mut usize) -> Option<NodeId> {
        while *cursor < replicas.len() {
            let id = replicas[*cursor];
            *cursor += 1;
            if self.node_arc(id).is_up() {
                return Some(id);
            }
            self.coord_stats.record_replica_skipped();
        }
        None
    }

    /// Executes a resolved read plan.
    pub fn read(&self, plan: &ReadPlan, consistency: Consistency) -> Result<Vec<Row>, DbError> {
        let _span = telemetry::span!("rasdb.coordinator.read");
        let (replicas, required) = self.plan_replicas(plan, consistency)?;

        // Version and epoch are snapshotted *before* any replica read: a
        // write landing mid-read bumps past the snapshot, so the entry we
        // insert below can never be validated against post-write state.
        let cache_key = block_key(plan, consistency);
        let version = self.data_version(&plan.table, &plan.partition);
        let epoch = self.topology_epoch();
        if let Some(rows) = self.block_cache_get(&cache_key, version, epoch) {
            return Ok(rows);
        }

        let mut responses: Vec<(NodeId, Vec<(Key, RowEntry)>)> = Vec::new();
        let mut cursor = 0;
        while let Some(id) = self.next_up_replica(&replicas, &mut cursor) {
            if let Some(raw) = self
                .node_arc(id)
                .read_raw(&plan.table, &plan.partition, &plan.range)
            {
                responses.push((id, raw));
            }
            if responses.len() >= required {
                break;
            }
        }
        if responses.len() < required {
            return Err(DbError::Unavailable {
                required,
                received: responses.len(),
            });
        }
        let rows = self.finish_read(plan, &responses);
        self.block_cache_insert(cache_key, &rows, version, epoch);
        Ok(rows)
    }

    /// Shared tail of every coordinator read: LWW merge across replica
    /// responses, read repair, tombstone filtering, order and limit.
    fn finish_read(
        &self,
        plan: &ReadPlan,
        responses: &[(NodeId, Vec<(Key, RowEntry)>)],
    ) -> Vec<Row> {
        // Merge replica responses (LWW per cell).
        let mut merged: BTreeMap<Key, RowEntry> = BTreeMap::new();
        for (_, raw) in responses {
            for (ck, entry) in raw {
                match merged.remove(ck) {
                    None => {
                        merged.insert(ck.clone(), entry.clone());
                    }
                    Some(existing) => {
                        merged.insert(ck.clone(), RowEntry::merge(existing, entry.clone()));
                    }
                }
            }
        }

        // Read repair: push the merged state back to replicas that answered
        // with stale or missing rows. A repair changes what lower
        // consistency levels may observe on the repaired replica, so it
        // bumps the partition version like any other mutation.
        if responses.len() > 1
            && self.read_repair(&plan.table, &plan.partition, &merged, responses) > 0
        {
            self.bump_version(&plan.table, &plan.partition);
        }

        let mut rows: Vec<Row> = merged
            .into_iter()
            .filter_map(|(ck, e)| {
                e.visible().map(|cells| Row {
                    clustering: ck,
                    cells,
                })
            })
            .collect();
        if plan.descending {
            rows.reverse();
        }
        if let Some(limit) = plan.limit {
            rows.truncate(limit);
        }
        rows
    }

    /// Scatter-gather read: executes every plan concurrently across the
    /// coordinator worker pool and returns the results in plan order.
    ///
    /// Each plan's read fans out to its first `required` *up* replicas in
    /// ring order — the same replica set the sequential [`Cluster::read`]
    /// would consult, so results are identical. If a dispatched replica
    /// turns out to be down mid-read, or a read outlives the speculative
    /// deadline (see [`Cluster::set_speculative_timeout`]), the coordinator
    /// retries against the next untried replica instead of blocking.
    ///
    /// Errors are all-or-nothing: any plan failing validation or falling
    /// short of its consistency level fails the whole batch, mirroring the
    /// error the sequential loop would have produced.
    pub fn read_multi(
        &self,
        plans: &[ReadPlan],
        consistency: Consistency,
    ) -> Result<Vec<Vec<Row>>, DbError> {
        let mut span = telemetry::span!("rasdb.coordinator.read_multi");
        // Trace context for worker-pool closures: replica reads on pool
        // threads parent under this span and carry the request's trace id.
        let ctx = span.context();
        if plans.is_empty() {
            return Ok(Vec::new());
        }
        self.coord_stats.record_read_multi(plans.len() as u64);

        // Per-plan gather state. Validation happens up front so a bad plan
        // fails before any work is queued.
        struct Gather {
            replicas: Vec<NodeId>,
            required: usize,
            /// Next replica index to try when a dispatched read fails or
            /// times out.
            next_replica: usize,
            responses: Vec<(NodeId, Vec<(Key, RowEntry)>)>,
            inflight: usize,
            deadline: Instant,
            done: bool,
        }

        let timeout = Duration::from_micros(self.speculative_timeout_us.load(Ordering::SeqCst));
        let now = Instant::now();

        // Validate every plan up front (the batch is all-or-nothing), then
        // consult the block cache: only misses are scattered. Versions and
        // the topology epoch are snapshotted before any replica read, for
        // the same reason as in [`Cluster::read`].
        let epoch = self.topology_epoch();
        let mut results: Vec<Option<Vec<Row>>> = (0..plans.len()).map(|_| None).collect();
        let mut miss: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<(Vec<u8>, u64)> = Vec::new();
        // Plan/merge sub-spans (like the per-replica spans below) are
        // profile-level phase detail: skipped unless a profile is being
        // collected, so the steady-state read path emits exactly one span
        // per read_multi call.
        let detail = telemetry::profiling_active();
        let mut gathers = Vec::new();
        {
            let _plan_span = detail.then(|| telemetry::span!("rasdb.coordinator.plan"));
            for (idx, plan) in plans.iter().enumerate() {
                let (replicas, required) = self.plan_replicas(plan, consistency)?;
                let key = block_key(plan, consistency);
                let version = self.data_version(&plan.table, &plan.partition);
                if let Some(rows) = self.block_cache_get(&key, version, epoch) {
                    results[idx] = Some(rows);
                    continue;
                }
                miss.push(idx);
                miss_keys.push((key, version));
                gathers.push(Gather {
                    replicas,
                    required,
                    next_replica: 0,
                    responses: Vec::new(),
                    inflight: 0,
                    deadline: now + timeout,
                    done: false,
                });
            }
        }
        if detail {
            span.tag("plans", plans.len().to_string());
            span.tag("block_hits", (plans.len() - miss.len()).to_string());
            span.tag("block_misses", miss.len().to_string());
        }

        if !miss.is_empty() {
            let (tx, rx) = unbounded::<ReplicaResponse>();
            let pool = self.coordinator();

            // Queues the read for gather `gi` on its next untried *up*
            // replica. Returns false when the replica list is exhausted.
            // `kind` labels why the read was dispatched (`scatter` for the
            // initial fan-out, `retry` after a down replica, `hedge` on a
            // speculative deadline) and rides into the replica span.
            let dispatch_next =
                |g: &mut Gather, gi: usize, kind: &'static str, tx: &Sender<ReplicaResponse>| {
                    if let Some(id) = self.next_up_replica(&g.replicas, &mut g.next_replica) {
                        let node = self.node_arc(id);
                        let plan = plans[miss[gi]].clone();
                        let tx = tx.clone();
                        pool.submit(
                            id,
                            Box::new(move || {
                                // Per-replica spans are profile-level detail:
                                // emitted only while some request is profiling,
                                // so the unprofiled fan-out hot path pays one
                                // atomic load per dispatch instead of a span.
                                // (Aggregate scatter/retry/hedge stats stay
                                // always-on via the `read_multi` span tags.)
                                let rspan = telemetry::profiling_active().then(|| {
                                    let mut rspan = match ctx {
                                        Some(c) => telemetry::SpanGuard::enter_in(
                                            "rasdb.coordinator.replica_read",
                                            &c,
                                        ),
                                        None => telemetry::span!("rasdb.coordinator.replica_read"),
                                    };
                                    rspan.tag("node", node.id.0.to_string());
                                    rspan.tag("kind", kind);
                                    rspan
                                });
                                let raw = node.read_raw(&plan.table, &plan.partition, &plan.range);
                                drop(rspan);
                                let _ = tx.send((gi, node.id, raw));
                            }),
                        );
                        g.inflight += 1;
                        return true;
                    }
                    false
                };

            // Initial scatter: `required` concurrent reads per plan.
            for (gi, g) in gathers.iter_mut().enumerate() {
                for _ in 0..g.required {
                    if !dispatch_next(g, gi, "scatter", &tx) {
                        break;
                    }
                }
                if g.inflight < g.required {
                    return Err(DbError::Unavailable {
                        required: g.required,
                        received: 0,
                    });
                }
            }

            // Gather until every plan has `required` responses.
            let mut retries = 0u64;
            let mut hedges = 0u64;
            let mut remaining = gathers.len();
            while remaining > 0 {
                match rx.recv_timeout(timeout) {
                    Ok((gi, id, raw)) => {
                        let g = &mut gathers[gi];
                        g.inflight -= 1;
                        if g.done {
                            continue;
                        }
                        match raw {
                            Some(rows) => {
                                g.responses.push((id, rows));
                                if g.responses.len() >= g.required {
                                    g.done = true;
                                    remaining -= 1;
                                }
                            }
                            None => {
                                // The node went down between dispatch and
                                // read: retry on the next replica.
                                self.coord_stats.record_speculative_retry();
                                retries += 1;
                                if !dispatch_next(g, gi, "retry", &tx) && g.inflight == 0 {
                                    return Err(DbError::Unavailable {
                                        required: g.required,
                                        received: g.responses.len(),
                                    });
                                }
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // Deadline pass: hedge every stalled plan with one
                        // more replica. Extend deadlines so each plan hedges
                        // at most once per timeout window.
                        let now = Instant::now();
                        for (gi, g) in gathers.iter_mut().enumerate() {
                            if g.done || now < g.deadline {
                                continue;
                            }
                            g.deadline = now + timeout;
                            if dispatch_next(g, gi, "hedge", &tx) {
                                self.coord_stats.record_speculative_retry();
                                hedges += 1;
                            } else if g.inflight == 0 {
                                return Err(DbError::Unavailable {
                                    required: g.required,
                                    received: g.responses.len(),
                                });
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => unreachable!("tx held by coordinator"),
                }
            }
            drop(tx);
            // Always tagged when nonzero — a retry or hedge is exactly
            // what a ring reader wants to see; the zero case is noise.
            if detail || retries > 0 {
                span.tag("retries", retries.to_string());
            }
            if detail || hedges > 0 {
                span.tag("hedges", hedges.to_string());
            }

            let _merge_span = detail.then(|| telemetry::span!("rasdb.coordinator.merge"));
            for ((gi, g), (key, version)) in gathers.iter().enumerate().zip(miss_keys) {
                let idx = miss[gi];
                let rows = self.finish_read(&plans[idx], &g.responses);
                self.block_cache_insert(key, &rows, version, epoch);
                results[idx] = Some(rows);
            }
        }

        Ok(results
            .into_iter()
            .map(|rows| rows.expect("every plan served from cache or scatter"))
            .collect())
    }

    /// Returns the number of repair mutations applied.
    fn read_repair(
        &self,
        table: &str,
        partition: &Key,
        merged: &BTreeMap<Key, RowEntry>,
        responses: &[(NodeId, Vec<(Key, RowEntry)>)],
    ) -> u64 {
        let mut repaired = 0;
        for (id, raw) in responses {
            let theirs: HashMap<&Key, &RowEntry> = raw.iter().map(|(k, e)| (k, e)).collect();
            for (ck, entry) in merged {
                let stale = theirs.get(ck).is_none_or(|have| *have != entry);
                if !stale {
                    continue;
                }
                let m = Mutation {
                    table: table.to_owned(),
                    partition: partition.clone(),
                    clustering: ck.clone(),
                    cells: entry
                        .cells
                        .iter()
                        .map(|(n, c)| (n.clone(), c.clone()))
                        .collect(),
                    row_delete: entry.deleted_at,
                };
                if self.node_arc(*id).apply(&m) {
                    repaired += 1;
                }
            }
        }
        repaired
    }

    /// Executes a CQL statement.
    pub fn execute(&self, cql_text: &str, consistency: Consistency) -> Result<ExecResult, DbError> {
        let stmt = cql::parse_statement(cql_text)?;
        self.execute_statement(stmt, consistency)
    }

    /// Executes a parsed statement.
    pub fn execute_statement(
        &self,
        stmt: Statement,
        consistency: Consistency,
    ) -> Result<ExecResult, DbError> {
        match stmt {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(ExecResult::Applied)
            }
            Statement::Insert { table, values } => {
                let schema = self
                    .schema(&table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let mut typed = Vec::with_capacity(values.len());
                for (col, lit) in values {
                    let def = schema.column(&col).ok_or_else(|| {
                        DbError::SchemaViolation(format!("unknown column '{col}'"))
                    })?;
                    let v = lit.coerce(def.ctype).ok_or_else(|| {
                        DbError::SchemaViolation(format!(
                            "literal {lit:?} does not fit column '{col}' ({})",
                            def.ctype.cql_name()
                        ))
                    })?;
                    typed.push((col, v));
                }
                self.insert_owned(&table, typed, consistency)?;
                Ok(ExecResult::Applied)
            }
            Statement::Select(sel) => {
                let plan = self.plan_select(&sel)?;
                let mut rows = self.read(&plan, consistency)?;
                if let Some(cols) = &sel.columns {
                    let schema = self
                        .schema(&sel.table)
                        .ok_or_else(|| DbError::NoSuchTable(sel.table.clone()))?;
                    for col in cols {
                        if schema.column(col).is_none() {
                            return Err(DbError::BadQuery(format!(
                                "unknown column '{col}' in projection"
                            )));
                        }
                    }
                    for row in &mut rows {
                        row.cells.retain(|name, _| cols.iter().any(|c| c == name));
                    }
                }
                Ok(ExecResult::Rows(rows))
            }
            Statement::Delete { table, predicates } => {
                let schema = self
                    .schema(&table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let mut pk = Vec::new();
                let mut ck = Vec::new();
                for col in schema.partition_key.iter().chain(&schema.clustering_key) {
                    let p = predicates
                        .iter()
                        .find(|p| p.column == col.name && p.op == CmpOp::Eq)
                        .ok_or_else(|| {
                            DbError::BadQuery(format!(
                                "DELETE requires '{}' pinned by equality",
                                col.name
                            ))
                        })?;
                    let v = p.value.coerce(col.ctype).ok_or_else(|| {
                        DbError::SchemaViolation(format!("bad literal for '{}'", col.name))
                    })?;
                    match schema.role_of(&col.name) {
                        Some(KeyRole::Partition) => pk.push(v),
                        _ => ck.push(v),
                    }
                }
                self.delete(&table, pk, ck, consistency)?;
                Ok(ExecResult::Applied)
            }
        }
    }

    /// Turns a parsed `SELECT` into a read plan, enforcing the CQL-style
    /// restrictions: all partition keys pinned by equality; clustering keys
    /// constrained as an equality prefix plus at most one ranged component.
    pub fn plan_select(&self, sel: &SelectStatement) -> Result<ReadPlan, DbError> {
        let schema = self
            .schema(&sel.table)
            .ok_or_else(|| DbError::NoSuchTable(sel.table.clone()))?;

        let mut partition = Vec::with_capacity(schema.partition_key.len());
        for col in &schema.partition_key {
            let p = sel
                .predicates
                .iter()
                .find(|p| p.column == col.name)
                .ok_or_else(|| {
                    DbError::BadQuery(format!("partition key '{}' must be constrained", col.name))
                })?;
            if p.op != CmpOp::Eq {
                return Err(DbError::BadQuery(format!(
                    "partition key '{}' only supports '='",
                    col.name
                )));
            }
            partition.push(p.value.coerce(col.ctype).ok_or_else(|| {
                DbError::SchemaViolation(format!("bad literal for '{}'", col.name))
            })?);
        }

        // Clustering: equality prefix, then optionally one ranged column.
        let mut prefix = Vec::new();
        let mut lower = None;
        let mut upper = None;
        let mut ranged = false;
        for col in &schema.clustering_key {
            let preds: Vec<&Predicate> = sel
                .predicates
                .iter()
                .filter(|p| p.column == col.name)
                .collect();
            if preds.is_empty() {
                break;
            }
            if ranged {
                return Err(DbError::BadQuery(format!(
                    "clustering column '{}' constrained after a ranged column",
                    col.name
                )));
            }
            if preds.len() == 1 && preds[0].op == CmpOp::Eq {
                prefix.push(preds[0].value.coerce(col.ctype).ok_or_else(|| {
                    DbError::SchemaViolation(format!("bad literal for '{}'", col.name))
                })?);
                continue;
            }
            for p in preds {
                let v = p.value.coerce(col.ctype).ok_or_else(|| {
                    DbError::SchemaViolation(format!("bad literal for '{}'", col.name))
                })?;
                match p.op {
                    CmpOp::Eq => {
                        return Err(DbError::BadQuery(format!(
                            "cannot mix '=' and ranges on '{}'",
                            col.name
                        )))
                    }
                    CmpOp::Gt => lower = Some((v, false)),
                    CmpOp::Ge => lower = Some((v, true)),
                    CmpOp::Lt => upper = Some((v, false)),
                    CmpOp::Le => upper = Some((v, true)),
                }
            }
            ranged = true;
        }

        // Reject predicates on unknown/regular columns (no filtering).
        for p in &sel.predicates {
            match schema.role_of(&p.column) {
                Some(KeyRole::Partition) | Some(KeyRole::Clustering) => {}
                Some(KeyRole::Regular) => {
                    return Err(DbError::BadQuery(format!(
                        "predicate on regular column '{}' unsupported",
                        p.column
                    )))
                }
                None => return Err(DbError::BadQuery(format!("unknown column '{}'", p.column))),
            }
        }

        let range = clustering_bounds(prefix, lower, upper, schema.clustering_key.len());
        Ok(ReadPlan {
            table: sel.table.clone(),
            partition: Key(partition),
            range,
            limit: sel.limit,
            descending: sel.descending,
        })
    }

    /// The replica set that owns a partition key of `table`.
    pub fn owners(&self, partition: &Key) -> Vec<NodeId> {
        self.topology.read().ring.replicas(token_for(partition))
    }

    /// The token of a partition key.
    pub fn token_of(&self, partition: &Key) -> Token {
        token_for(partition)
    }

    /// Partition keys whose *primary* replica is `node` (locality scans).
    pub fn local_partition_keys(&self, table: &str, node: NodeId) -> Vec<Key> {
        let ring = self.ring();
        self.node_arc(node)
            .local_partition_keys(table)
            .into_iter()
            .filter(|k| ring.primary(token_for(k)) == node)
            .collect()
    }

    /// Flushes every table on every node (benches, deterministic reads).
    pub fn flush_all(&self) {
        let tables = self.table_names();
        let nodes = self.nodes.read().clone();
        for node in &nodes {
            for t in &tables {
                node.flush(t);
                node.maybe_compact(t);
            }
        }
    }

    /// Aggregated stats across nodes.
    pub fn stats(&self) -> StatsSnapshot {
        self.nodes
            .read()
            .iter()
            .fold(StatsSnapshot::default(), |acc, n| acc.add(&n.stats()))
    }

    /// Topology-transition counters (streaming, retries, resumes, aborts).
    pub fn topology_stats(&self) -> &TopologyStats {
        &self.topo_stats
    }

    /// Overrides the rows-per-chunk granularity of range streaming
    /// (default [`DEFAULT_STREAM_CHUNK_ROWS`]); smaller chunks mean finer
    /// resume points and more fault-plan trigger opportunities.
    pub fn set_stream_chunk_rows(&self, rows: u64) {
        self.stream_chunk_rows.store(rows.max(1), Ordering::SeqCst);
    }

    /// Point-in-time topology summary: epoch, transition state, and every
    /// node slot with its liveness and ring membership.
    pub fn topology_status(&self) -> TopologyStatus {
        let topo = self.topology.read();
        let state = match &topo.transition {
            None => "stable".to_owned(),
            Some(t) => format!("{}ing({})", t.kind.as_str(), t.node.0),
        };
        let members = self
            .nodes
            .read()
            .iter()
            .map(|n| MemberStatus {
                id: n.id,
                up: n.is_up(),
                in_ring: topo.ring.contains(n.id),
            })
            .collect();
        TopologyStatus {
            epoch: self.epoch.load(Ordering::SeqCst),
            replication_factor: topo.ring.replication_factor(),
            state,
            members,
        }
    }

    /// Adds a brand-new node to the ring, streaming its token ranges from
    /// the current owners before it takes ownership. Returns the committed
    /// transition's report. See [`Cluster::join_node_with`] for fault
    /// injection.
    pub fn join_node(&self) -> Result<TransitionReport, DbError> {
        self.join_node_with(TopologyFaultPlan::none())
    }

    /// [`Cluster::join_node`] with a deterministic fault plan injected into
    /// the range stream. On stream exhaustion the join aborts cleanly: the
    /// pre-join ring and epoch are restored exactly, the half-filled joiner
    /// is retired, and its queued hints are dropped (counted in
    /// [`CoordinatorStats::hints_dropped`]).
    pub fn join_node_with(&self, plan: TopologyFaultPlan) -> Result<TransitionReport, DbError> {
        let _span = telemetry::span!("rasdb.topology.join");
        // Install the transition atomically: slot creation, target ring,
        // and the double-write window all become visible together.
        let (joiner, old_ring, target_ring) = {
            let mut topo = self.topology.write();
            if topo.transition.is_some() {
                return Err(DbError::TopologyChanging {
                    retry_after_ms: TOPOLOGY_RETRY_AFTER_MS,
                });
            }
            let joiner = {
                let mut nodes = self.nodes.write();
                let id = NodeId(nodes.len());
                nodes.push(Arc::new(StorageNode::new(id, self.node_cfg)));
                id
            };
            // Register every table on the joiner *after* its slot exists:
            // a concurrent `create_table` either finished earlier (so
            // `table_names` sees it) or iterates the node list after the
            // push (so it covers the joiner itself).
            let node = self.node_arc(joiner);
            for t in self.table_names() {
                node.create_table(&t);
            }
            let target = topo.ring.with_member(joiner);
            topo.transition = Some(Transition {
                kind: TransitionKind::Join,
                node: joiner,
                target_ring: target.clone(),
            });
            (joiner, topo.ring.clone(), target)
        };

        let faults = StreamFaults::new(plan);
        let mut report = TransitionReport {
            kind: TransitionKind::Join,
            node: joiner,
            partitions_streamed: 0,
            rows_streamed: 0,
            chunks_streamed: 0,
            chunk_retries: 0,
            stream_resumes: 0,
            hints_rerouted: 0,
            epoch: 0,
        };
        match self.stream_transition(joiner, &old_ring, &target_ring, &faults, &mut report) {
            Ok(()) => {
                self.commit_join(joiner, target_ring, &mut report);
                Ok(report)
            }
            Err(e) => {
                self.abort_join(joiner);
                Err(e)
            }
        }
    }

    fn commit_join(&self, joiner: NodeId, target_ring: Ring, report: &mut TransitionReport) {
        let node = self.node_arc(joiner);
        let mut topo = self.topology.write();
        // Drain the joiner's hints (double-writes that missed it while it
        // streamed) under the topology lock so the swap is atomic: by the
        // time any coordinator sees the new ring, the new owner is whole.
        let hints = self.hints.lock().remove(&joiner).unwrap_or_default();
        for m in &hints {
            node.apply(m);
        }
        topo.ring = target_ring;
        topo.transition = None;
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(topo);
        report.epoch = self.topology_epoch();
        self.topo_stats.record_join();
    }

    fn abort_join(&self, joiner: NodeId) {
        {
            let mut topo = self.topology.write();
            topo.transition = None;
        }
        // The half-filled joiner never owned anything: retire it in place
        // (its id is burned) and drop any hints double-writes queued for
        // it. No epoch bump — placement never changed, so no cache entry
        // went stale.
        self.node_arc(joiner).retire();
        let dropped = self.hints.lock().remove(&joiner).map_or(0, |q| q.len());
        for _ in 0..dropped {
            self.coord_stats.record_hint_dropped();
        }
        self.topo_stats.record_abort();
    }

    /// Removes a member from the ring, streaming its ranges to their new
    /// owners first. Works even when the leaver is down (`removenode`
    /// semantics): the remaining replicas donate its data. See
    /// [`Cluster::decommission_node_with`] for fault injection.
    pub fn decommission_node(&self, id: NodeId) -> Result<TransitionReport, DbError> {
        self.decommission_node_with(id, TopologyFaultPlan::none())
    }

    /// [`Cluster::decommission_node`] with a deterministic fault plan
    /// injected into the range stream. On stream exhaustion the
    /// decommission aborts: the leaver stays a full member and no epoch is
    /// bumped (partially streamed rows on gainers are harmless — streaming
    /// is idempotent LWW state transfer).
    pub fn decommission_node_with(
        &self,
        id: NodeId,
        plan: TopologyFaultPlan,
    ) -> Result<TransitionReport, DbError> {
        let _span = telemetry::span!("rasdb.topology.decommission");
        let (old_ring, target_ring) = {
            let mut topo = self.topology.write();
            if topo.transition.is_some() {
                return Err(DbError::TopologyChanging {
                    retry_after_ms: TOPOLOGY_RETRY_AFTER_MS,
                });
            }
            if !topo.ring.contains(id) {
                return Err(DbError::BadQuery(format!(
                    "node {} is not a ring member",
                    id.0
                )));
            }
            if topo.ring.node_count() <= topo.ring.replication_factor() {
                return Err(DbError::BadQuery(format!(
                    "cannot decommission node {}: membership would fall below the replication factor",
                    id.0
                )));
            }
            let target = topo.ring.without_member(id);
            topo.transition = Some(Transition {
                kind: TransitionKind::Decommission,
                node: id,
                target_ring: target.clone(),
            });
            (topo.ring.clone(), target)
        };

        let faults = StreamFaults::new(plan);
        let mut report = TransitionReport {
            kind: TransitionKind::Decommission,
            node: id,
            partitions_streamed: 0,
            rows_streamed: 0,
            chunks_streamed: 0,
            chunk_retries: 0,
            stream_resumes: 0,
            hints_rerouted: 0,
            epoch: 0,
        };
        match self.stream_transition(id, &old_ring, &target_ring, &faults, &mut report) {
            Ok(()) => {
                self.commit_decommission(id, &old_ring, target_ring, &mut report);
                Ok(report)
            }
            Err(e) => {
                {
                    let mut topo = self.topology.write();
                    topo.transition = None;
                }
                self.topo_stats.record_abort();
                Err(e)
            }
        }
    }

    fn commit_decommission(
        &self,
        leaver: NodeId,
        old_ring: &Ring,
        target_ring: Ring,
        report: &mut TransitionReport,
    ) {
        // Re-route the leaver's queued hints to each range's new owner:
        // they would otherwise wait forever on a node that never returns.
        // The hinted data also traveled the stream (it lives on the other
        // old replicas the stream sourced from), so this is convergence
        // acceleration, not the only copy — but it keeps the gainer whole
        // without waiting for read repair.
        let leaver_hints = self.hints.lock().remove(&leaver).unwrap_or_default();
        for m in &leaver_hints {
            let token = token_for(&m.partition);
            let old_reps = old_ring.replicas(token);
            for g in target_ring.replicas(token) {
                if old_reps.contains(&g) {
                    continue;
                }
                if !self.node_arc(g).apply(m) {
                    self.queue_hint(g, m);
                }
            }
            report.hints_rerouted += 1;
            self.coord_stats.record_hint_rerouted();
            self.bump_version(&m.table, &m.partition);
        }
        let mut topo = self.topology.write();
        topo.ring = target_ring;
        topo.transition = None;
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(topo);
        // Retire directly (not `take_node_down`): leaving the ring is the
        // epoch-relevant event and it was already counted above.
        self.node_arc(leaver).retire();
        report.epoch = self.topology_epoch();
        self.topo_stats.record_decommission();
    }

    /// Streams every partition that gains an owner under `target_ring`
    /// from its current owners. Holds no cluster locks: coordinators keep
    /// serving reads and (double-)writes throughout.
    fn stream_transition(
        &self,
        tnode: NodeId,
        old_ring: &Ring,
        target_ring: &Ring,
        faults: &StreamFaults,
        report: &mut TransitionReport,
    ) -> Result<(), DbError> {
        let _span = telemetry::span!("rasdb.topology.stream");
        for table in self.table_names() {
            // Candidate partitions: the union of what every current member
            // stores. (For a join the transitioning node holds nothing
            // yet; for a decommission it may be down — the union over all
            // members covers every partition either way.)
            let mut candidates: BTreeSet<Key> = BTreeSet::new();
            for id in old_ring.members() {
                for pk in self.node_arc(*id).local_partition_keys(&table) {
                    candidates.insert(pk);
                }
            }
            for pk in candidates {
                let token = token_for(&pk);
                let donors = old_ring.replicas(token);
                let gainers: Vec<NodeId> = target_ring
                    .replicas(token)
                    .into_iter()
                    .filter(|n| !donors.contains(n))
                    .collect();
                if gainers.is_empty() {
                    continue;
                }
                let mut streamed_any = false;
                for g in gainers {
                    let rows =
                        self.stream_partition(&table, &pk, &donors, g, tnode, faults, report)?;
                    if rows > 0 {
                        streamed_any = true;
                        report.rows_streamed += rows;
                    }
                }
                if streamed_any {
                    report.partitions_streamed += 1;
                }
            }
        }
        Ok(())
    }

    /// Quorum-merged source rows for one partition: reading any quorum of
    /// the old owners is the zero-loss keystone — every row ever acked at
    /// QUORUM lives on at least a quorum of them, and any two quorums
    /// intersect, so the merge can never miss an acked row. A single-donor
    /// stream would NOT have this property.
    fn stream_source_rows(
        &self,
        table: &str,
        pk: &Key,
        donors: &[NodeId],
    ) -> Result<Vec<(Key, RowEntry)>, DbError> {
        let required = Consistency::Quorum.required(donors.len());
        let mut merged: BTreeMap<Key, RowEntry> = BTreeMap::new();
        let mut responses = 0;
        for id in donors {
            let Some(raw) = self.node_arc(*id).read_raw(table, pk, &full_range()) else {
                continue;
            };
            responses += 1;
            for (ck, entry) in raw {
                match merged.remove(&ck) {
                    None => {
                        merged.insert(ck, entry);
                    }
                    Some(existing) => {
                        merged.insert(ck, RowEntry::merge(existing, entry));
                    }
                }
            }
        }
        if responses < required {
            return Err(DbError::Unavailable {
                required,
                received: responses,
            });
        }
        Ok(merged.into_iter().collect())
    }

    /// Streams one partition to one gainer in checksummed chunks, resuming
    /// from the last acked chunk after donor or receiver crashes. Returns
    /// the number of rows delivered.
    #[allow(clippy::too_many_arguments)]
    fn stream_partition(
        &self,
        table: &str,
        pk: &Key,
        donors: &[NodeId],
        gainer: NodeId,
        tnode: NodeId,
        faults: &StreamFaults,
        report: &mut TransitionReport,
    ) -> Result<u64, DbError> {
        let chunk_rows = self.stream_chunk_rows.load(Ordering::SeqCst).max(1) as usize;
        // Resume cursor: the clustering key of the last acked row. After a
        // crash the source is re-fetched (the surviving quorum may differ)
        // and rows at or below the cursor are skipped — they were acked,
        // and any *new* row landing below the cursor mid-transition is
        // covered by the double-write path, never by the stream.
        let mut last_acked: Option<Key> = None;
        let mut streamed = 0u64;
        'restart: loop {
            let all = self.stream_source_rows(table, pk, donors)?;
            let pending: Vec<(Key, RowEntry)> = match &last_acked {
                None => all,
                Some(b) => all.into_iter().filter(|(ck, _)| ck > b).collect(),
            };
            if pending.is_empty() {
                return Ok(streamed);
            }
            for chunk in pending.chunks(chunk_rows) {
                match self.send_chunk(table, pk, chunk, donors, gainer, tnode, faults, report)? {
                    ChunkOutcome::Acked => {
                        last_acked = Some(chunk.last().expect("non-empty chunk").0.clone());
                        streamed += chunk.len() as u64;
                    }
                    ChunkOutcome::RestartPartition => {
                        report.stream_resumes += 1;
                        self.topo_stats.record_stream_resume();
                        continue 'restart;
                    }
                }
            }
            return Ok(streamed);
        }
    }

    /// One chunk through the fault plan: drop/slow/corrupt injection on
    /// the wire, checksum verification at the receiver, crash triggers on
    /// either side. Retries up to the plan's attempt budget; exhaustion
    /// aborts the whole transition.
    #[allow(clippy::too_many_arguments)]
    fn send_chunk(
        &self,
        table: &str,
        pk: &Key,
        rows: &[(Key, RowEntry)],
        donors: &[NodeId],
        gainer: NodeId,
        tnode: NodeId,
        faults: &StreamFaults,
        report: &mut TransitionReport,
    ) -> Result<ChunkOutcome, DbError> {
        let max_attempts = faults.plan().effective_attempts();
        let retry = |report: &mut TransitionReport| {
            report.chunk_retries += 1;
            self.topo_stats.record_chunk_retry();
        };
        for _ in 0..max_attempts {
            let attempt = faults.next_attempt();
            if faults.donor_crash_due(attempt) {
                // Crash a donor that is not the transitioning node itself;
                // the stream must re-source from the surviving quorum.
                if let Some(victim) = donors
                    .iter()
                    .find(|d| **d != tnode && self.node_arc(**d).is_up())
                {
                    self.take_node_down(*victim);
                }
                return Ok(ChunkOutcome::RestartPartition);
            }
            if let Some(d) = faults.slow_for(attempt) {
                std::thread::sleep(d);
            }
            if faults.should_drop(attempt) {
                retry(report);
                continue;
            }
            // The chunk travels as canonical bytes with a checksum computed
            // before transmission; the receiver recomputes it over what
            // arrived and NAKs on mismatch.
            let mut encoded = encode_stream_chunk(pk, rows);
            let sent_checksum = stream_chunk_checksum(&encoded);
            if faults.should_corrupt(attempt) {
                let i = encoded.len() / 2;
                encoded[i] ^= 0xff;
            }
            if stream_chunk_checksum(&encoded) != sent_checksum {
                retry(report);
                continue;
            }
            let gnode = self.node_arc(gainer);
            let muts: Vec<Mutation> = rows
                .iter()
                .map(|(ck, entry)| Mutation {
                    table: table.to_owned(),
                    partition: pk.clone(),
                    clustering: ck.clone(),
                    cells: entry
                        .cells
                        .iter()
                        .map(|(n, c)| (n.clone(), c.clone()))
                        .collect(),
                    row_delete: entry.deleted_at,
                })
                .collect();
            if !gnode.apply_chunk(&muts) {
                // The receiver is down mid-transfer: bounce it (commit-log
                // recovery preserves every previously acked chunk) and
                // retry this one.
                gnode.restart();
                retry(report);
                continue;
            }
            report.chunks_streamed += 1;
            self.topo_stats.record_chunk(rows.len() as u64);
            if faults.ack_and_check_joiner_crash() {
                // Receiver crash after the ack: restart it and resume the
                // stream from this (acked, commit-logged) chunk boundary.
                gnode.set_up(false);
                gnode.restart();
                return Ok(ChunkOutcome::RestartPartition);
            }
            return Ok(ChunkOutcome::Acked);
        }
        Err(DbError::StreamAborted(format!(
            "chunk for a partition of '{table}' exhausted {max_attempts} attempts"
        )))
    }
}

/// Outcome of one chunk send.
enum ChunkOutcome {
    /// Receiver acked; advance to the next chunk.
    Acked,
    /// A crash interrupted the stream; re-source the partition and resume
    /// past the last acked chunk.
    RestartPartition,
}

/// Fluent `SELECT` builder for programmatic queries.
pub struct SelectBuilder<'c> {
    cluster: &'c Cluster,
    table: String,
    partition: Vec<Value>,
    prefix: Vec<Value>,
    lower: Option<(Value, bool)>,
    upper: Option<(Value, bool)>,
    limit: Option<usize>,
    descending: bool,
}

impl<'c> SelectBuilder<'c> {
    /// Sets the full partition key.
    pub fn partition(mut self, key: Vec<Value>) -> Self {
        self.partition = key;
        self
    }

    /// Adds an equality constraint on the next clustering component.
    pub fn clustering_eq(mut self, value: Value) -> Self {
        self.prefix.push(value);
        self
    }

    /// Inclusive lower bound on the next clustering component.
    pub fn from_inclusive(mut self, value: Value) -> Self {
        self.lower = Some((value, true));
        self
    }

    /// Exclusive upper bound on the next clustering component.
    pub fn to_exclusive(mut self, value: Value) -> Self {
        self.upper = Some((value, false));
        self
    }

    /// Inclusive upper bound on the next clustering component.
    pub fn to_inclusive(mut self, value: Value) -> Self {
        self.upper = Some((value, true));
        self
    }

    /// Limits the number of rows returned.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Returns rows in reverse clustering order.
    pub fn descending(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Runs the read.
    pub fn run(self, consistency: Consistency) -> Result<Vec<Row>, DbError> {
        let schema = self
            .cluster
            .schema(&self.table)
            .ok_or_else(|| DbError::NoSuchTable(self.table.clone()))?;
        let range = clustering_bounds(
            self.prefix,
            self.lower,
            self.upper,
            schema.clustering_key.len(),
        );
        let plan = ReadPlan {
            table: self.table,
            partition: Key(self.partition),
            range,
            limit: self.limit,
            descending: self.descending,
        };
        self.cluster.read(&plan, consistency)
    }
}

/// Convenience: an unbounded clustering range.
pub fn full_range() -> (Bound<Key>, Bound<Key>) {
    (Bound::Unbounded, Bound::Unbounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn events_cluster(nodes: usize, rf: usize) -> Cluster {
        let c = Cluster::new(ClusterConfig {
            nodes,
            replication_factor: rf,
            vnodes: 8,
        });
        c.create_table(
            TableSchema::builder("event_by_time")
                .partition_key("hour", ColumnType::BigInt)
                .partition_key("type", ColumnType::Text)
                .clustering_key("ts", ColumnType::Timestamp)
                .column("source", ColumnType::Text)
                .column("amount", ColumnType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    fn put(c: &Cluster, hour: i64, typ: &str, ts: i64, src: &str, cl: Consistency) {
        c.insert(
            "event_by_time",
            vec![
                ("hour", Value::BigInt(hour)),
                ("type", Value::text(typ)),
                ("ts", Value::Timestamp(ts)),
                ("source", Value::text(src)),
                ("amount", Value::Int(1)),
            ],
            cl,
        )
        .unwrap();
    }

    #[test]
    fn insert_select_roundtrip() {
        let c = events_cluster(4, 3);
        for ts in 0..50 {
            put(&c, 1, "MCE", ts, "c0-0c0s0n0", Consistency::Quorum);
        }
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1), Value::text("MCE")])
            .run(Consistency::Quorum)
            .unwrap();
        assert_eq!(rows.len(), 50);
        // Time-series order.
        assert!(rows.windows(2).all(|w| w[0].clustering < w[1].clustering));
    }

    #[test]
    fn range_limit_descending() {
        let c = events_cluster(4, 3);
        for ts in 0..100 {
            put(&c, 1, "MCE", ts, "n", Consistency::One);
        }
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1), Value::text("MCE")])
            .from_inclusive(Value::Timestamp(10))
            .to_exclusive(Value::Timestamp(20))
            .run(Consistency::One)
            .unwrap();
        assert_eq!(rows.len(), 10);

        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1), Value::text("MCE")])
            .descending()
            .limit(3)
            .run(Consistency::One)
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].clustering, Key(vec![Value::Timestamp(99)]));
    }

    #[test]
    fn quorum_survives_one_node_down_with_rf3() {
        let c = events_cluster(5, 3);
        put(&c, 7, "MCE", 1, "n", Consistency::All);
        let owners = c.owners(&Key(vec![Value::BigInt(7), Value::text("MCE")]));
        c.take_node_down(owners[0]);
        // Quorum still works…
        put(&c, 7, "MCE", 2, "n", Consistency::Quorum);
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::Quorum)
            .unwrap();
        assert_eq!(rows.len(), 2);
        // …but ALL fails.
        let err = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::All)
            .unwrap_err();
        assert!(matches!(err, DbError::Unavailable { .. }));
    }

    #[test]
    fn write_fails_when_too_many_replicas_down() {
        let c = events_cluster(3, 3);
        let owners = c.owners(&Key(vec![Value::BigInt(7), Value::text("MCE")]));
        c.take_node_down(owners[0]);
        c.take_node_down(owners[1]);
        let err = c
            .insert(
                "event_by_time",
                vec![
                    ("hour", Value::BigInt(7)),
                    ("type", Value::text("MCE")),
                    ("ts", Value::Timestamp(1)),
                ],
                Consistency::Quorum,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::Unavailable {
                required: 2,
                received: 1
            }
        ));
    }

    #[test]
    fn hinted_handoff_catches_up_recovered_node() {
        let c = events_cluster(3, 3);
        let pkey = Key(vec![Value::BigInt(7), Value::text("MCE")]);
        let owners = c.owners(&pkey);
        c.take_node_down(owners[2]);
        put(&c, 7, "MCE", 1, "n", Consistency::Quorum);
        put(&c, 7, "MCE", 2, "n", Consistency::Quorum);
        assert_eq!(c.pending_hints(owners[2]), 2);
        c.bring_node_up(owners[2]);
        assert_eq!(c.pending_hints(owners[2]), 0);
        // The recovered node can now serve the data alone.
        for other in &owners[..2] {
            c.take_node_down(*other);
        }
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::One)
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn hint_queue_cap_drops_oldest_and_counts() {
        let c = events_cluster(3, 3);
        c.set_hint_cap(3);
        let pkey = Key(vec![Value::BigInt(7), Value::text("MCE")]);
        let owners = c.owners(&pkey);
        c.take_node_down(owners[2]);
        for ts in 1..=5 {
            put(&c, 7, "MCE", ts, "n", Consistency::Quorum);
        }
        assert_eq!(c.pending_hints(owners[2]), 3, "queue capped");
        assert_eq!(c.coordinator_stats().hints_dropped(), 2);
        // Replay delivers the *newest* hints: recovered node alone serves
        // the rows whose hints survived the cap.
        c.bring_node_up(owners[2]);
        for other in &owners[..2] {
            c.take_node_down(*other);
        }
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::One)
            .unwrap();
        assert_eq!(rows.len(), 3, "ts 3..=5 survived, ts 1..=2 dropped");
    }

    #[test]
    fn read_repair_heals_stale_replica() {
        let c = events_cluster(3, 3);
        let pkey = Key(vec![Value::BigInt(7), Value::text("MCE")]);
        let owners = c.owners(&pkey);
        // Write while one replica is down (hint stored but not delivered).
        c.take_node_down(owners[2]);
        put(&c, 7, "MCE", 1, "n", Consistency::Quorum);
        // Bring it up WITHOUT hints (simulate hint loss).
        c.node(owners[2]).set_up(true);
        c.hints.lock().clear();
        // A quorum read touches the stale node only if it is among the
        // first `required` responders; read at ALL to force it.
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::All)
            .unwrap();
        assert_eq!(rows.len(), 1);
        // After repair, the once-stale replica can serve alone.
        c.take_node_down(owners[0]);
        c.take_node_down(owners[1]);
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::One)
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn select_requires_full_partition_key() {
        let c = events_cluster(3, 2);
        let err = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1)])
            .run(Consistency::One)
            .unwrap_err();
        assert!(matches!(err, DbError::BadQuery(_)));
    }

    #[test]
    fn duplicate_create_table_rejected() {
        let c = events_cluster(2, 1);
        let err = c
            .create_table(
                TableSchema::builder("event_by_time")
                    .partition_key("x", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::TableExists(_)));
    }

    #[test]
    fn lww_across_replicas() {
        let c = events_cluster(4, 3);
        put(&c, 1, "MCE", 5, "first", Consistency::All);
        put(&c, 1, "MCE", 5, "second", Consistency::All);
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1), Value::text("MCE")])
            .run(Consistency::All)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cell("source"), Some(&Value::text("second")));
    }

    #[test]
    fn delete_then_read_is_empty() {
        let c = events_cluster(3, 2);
        put(&c, 1, "MCE", 5, "n", Consistency::All);
        c.delete(
            "event_by_time",
            vec![Value::BigInt(1), Value::text("MCE")],
            vec![Value::Timestamp(5)],
            Consistency::All,
        )
        .unwrap();
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(1), Value::text("MCE")])
            .run(Consistency::All)
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn cql_projection_filters_cells() {
        let c = events_cluster(3, 2);
        put(&c, 1, "MCE", 5, "nodeA", Consistency::All);
        let out = c
            .execute(
                "SELECT source FROM event_by_time WHERE hour = 1 AND type = 'MCE'",
                Consistency::All,
            )
            .unwrap();
        let ExecResult::Rows(rows) = out else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 1);
        assert_eq!(rows[0].cell("source"), Some(&Value::text("nodeA")));
        assert_eq!(rows[0].cell("amount"), None);
        // Unknown projected column is a clean error.
        let err = c
            .execute(
                "SELECT bogus FROM event_by_time WHERE hour = 1 AND type = 'MCE'",
                Consistency::All,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::BadQuery(_)));
    }

    #[test]
    fn read_multi_matches_sequential_reads() {
        let c = events_cluster(4, 3);
        for hour in 0..24 {
            for ts in 0..20 {
                put(&c, hour, "MCE", ts, "n", Consistency::Quorum);
            }
        }
        let plans: Vec<ReadPlan> = (0..24)
            .map(|hour| ReadPlan {
                table: "event_by_time".into(),
                partition: Key(vec![Value::BigInt(hour), Value::text("MCE")]),
                range: full_range(),
                limit: None,
                descending: false,
            })
            .collect();
        let batched = c.read_multi(&plans, Consistency::Quorum).unwrap();
        assert_eq!(batched.len(), 24);
        for (plan, rows) in plans.iter().zip(&batched) {
            assert_eq!(rows, &c.read(plan, Consistency::Quorum).unwrap());
            assert_eq!(rows.len(), 20);
        }
        assert_eq!(c.coordinator_stats().read_multi_batches(), 1);
        assert_eq!(c.coordinator_stats().read_multi_plans(), 24);
    }

    #[test]
    fn read_multi_empty_batch_is_empty() {
        let c = events_cluster(2, 1);
        assert!(c.read_multi(&[], Consistency::One).unwrap().is_empty());
    }

    #[test]
    fn read_multi_rejects_unknown_table() {
        let c = events_cluster(2, 1);
        let plan = ReadPlan {
            table: "nope".into(),
            partition: Key(vec![Value::BigInt(1)]),
            range: full_range(),
            limit: None,
            descending: false,
        };
        assert!(matches!(
            c.read_multi(&[plan], Consistency::One),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn read_multi_survives_down_node_and_matches_sequential() {
        let c = events_cluster(5, 3);
        for hour in 0..12 {
            put(&c, hour, "MCE", 1, "n", Consistency::All);
        }
        c.take_node_down(NodeId(0));
        // More writes while the node is down: hints stay pending.
        for hour in 0..12 {
            put(&c, hour, "MCE", 2, "n", Consistency::Quorum);
        }
        let plans: Vec<ReadPlan> = (0..12)
            .map(|hour| ReadPlan {
                table: "event_by_time".into(),
                partition: Key(vec![Value::BigInt(hour), Value::text("MCE")]),
                range: full_range(),
                limit: None,
                descending: false,
            })
            .collect();
        let batched = c.read_multi(&plans, Consistency::Quorum).unwrap();
        for (plan, rows) in plans.iter().zip(&batched) {
            assert_eq!(rows.len(), 2);
            assert_eq!(rows, &c.read(plan, Consistency::Quorum).unwrap());
        }
    }

    #[test]
    fn read_skips_down_replicas_and_counts_them() {
        let c = events_cluster(5, 3);
        let pkey = Key(vec![Value::BigInt(7), Value::text("MCE")]);
        put(&c, 7, "MCE", 1, "n", Consistency::All);
        let owners = c.owners(&pkey);
        c.take_node_down(owners[0]);
        let before = c.coordinator_stats().replica_skipped();
        let rows = c
            .select("event_by_time")
            .partition(vec![Value::BigInt(7), Value::text("MCE")])
            .run(Consistency::Quorum)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(c.coordinator_stats().replica_skipped(), before + 1);
    }

    #[test]
    fn read_multi_hedges_a_slow_replica() {
        let c = events_cluster(4, 3);
        put(&c, 3, "MCE", 1, "n", Consistency::All);
        let pkey = Key(vec![Value::BigInt(3), Value::text("MCE")]);
        let owners = c.owners(&pkey);
        // First replica answers slower than the speculative deadline; at
        // Consistency::One the hedge to the next replica wins the race.
        c.node(owners[0]).set_read_latency_us(20_000);
        c.set_speculative_timeout(Duration::from_millis(2));
        let plan = ReadPlan {
            table: "event_by_time".into(),
            partition: pkey,
            range: full_range(),
            limit: None,
            descending: false,
        };
        let rows = c.read_multi(&[plan], Consistency::One).unwrap();
        assert_eq!(rows[0].len(), 1);
        assert!(c.coordinator_stats().speculative_retries() >= 1);
    }

    #[test]
    fn block_cache_serves_repeats_and_invalidates_on_write() {
        let c = events_cluster(4, 3);
        for ts in 0..10 {
            put(&c, 1, "MCE", ts, "n", Consistency::Quorum);
        }
        let plan = ReadPlan {
            table: "event_by_time".into(),
            partition: Key(vec![Value::BigInt(1), Value::text("MCE")]),
            range: full_range(),
            limit: None,
            descending: false,
        };
        let first = c.read(&plan, Consistency::Quorum).unwrap();
        let hits = c.block_cache_stats().hits();
        assert_eq!(c.read(&plan, Consistency::Quorum).unwrap(), first);
        assert_eq!(c.block_cache_stats().hits(), hits + 1);

        // A write to the partition bumps its version: the stale entry is
        // invalidated and the re-read sees the new row.
        put(&c, 1, "MCE", 99, "n", Consistency::Quorum);
        let invalidations = c.block_cache_stats().invalidations();
        assert_eq!(c.read(&plan, Consistency::Quorum).unwrap().len(), 11);
        assert_eq!(c.block_cache_stats().invalidations(), invalidations + 1);

        // Topology changes invalidate too: a down node shifts what any
        // consistency level can observe.
        c.take_node_down(NodeId(0));
        let invalidations = c.block_cache_stats().invalidations();
        let _ = c.read(&plan, Consistency::One).unwrap();
        let _ = c.read(&plan, Consistency::One).unwrap();
        c.bring_node_up(NodeId(0));
        let _ = c.read(&plan, Consistency::One).unwrap();
        assert!(c.block_cache_stats().invalidations() > invalidations);

        // Budget zero disables the cache entirely.
        c.set_block_cache_budget(0);
        let hits = c.block_cache_stats().hits();
        let _ = c.read(&plan, Consistency::Quorum).unwrap();
        let _ = c.read(&plan, Consistency::Quorum).unwrap();
        assert_eq!(c.block_cache_stats().hits(), hits);
    }

    #[test]
    fn local_partition_keys_cover_all_partitions_once() {
        let c = events_cluster(4, 2);
        for hour in 0..24 {
            put(&c, hour, "MCE", 1, "n", Consistency::All);
        }
        let mut seen = std::collections::HashSet::new();
        for n in 0..c.node_count() {
            for k in c.local_partition_keys("event_by_time", NodeId(n)) {
                assert!(seen.insert(k), "primary ownership must be unique");
            }
        }
        assert_eq!(seen.len(), 24);
    }
}
