//! A storage node: commit log + memtable + SSTables per table, behind a
//! message-style API used only by coordinators.

use crate::commitlog::{CommitLog, Mutation};
use crate::compaction::{self, CompactionConfig};
use crate::memtable::{Memtable, RowEntry};
use crate::ring::NodeId;
use crate::sstable::SsTable;
use crate::stats::{NodeStats, StatsSnapshot};
use crate::types::{Key, Row};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Node tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Memtable cell count that triggers a flush.
    pub flush_threshold: usize,
    /// Commit-log segment size in records.
    pub commitlog_segment: usize,
    /// Compaction strategy parameters.
    pub compaction: CompactionConfig,
    /// Bloom-filter usage on reads (ablation hook).
    pub use_bloom: bool,
    /// Simulated per-read service latency (RPC + disk round trip of a
    /// replica read). `0` = serve instantly. Benches use this to model a
    /// real networked cluster, where the sequential-vs-scatter-gather
    /// difference comes from overlapping replica waits.
    pub read_latency_us: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            flush_threshold: 64 * 1024,
            commitlog_segment: 16 * 1024,
            compaction: CompactionConfig::default(),
            use_bloom: true,
            read_latency_us: 0,
        }
    }
}

/// Storage for one table on one node.
#[derive(Debug)]
struct TableStore {
    memtable: Memtable,
    sstables: Vec<SsTable>,
    next_sequence: u64,
    commitlog: CommitLog,
}

impl TableStore {
    fn new(cfg: &NodeConfig) -> TableStore {
        TableStore {
            memtable: Memtable::new(),
            sstables: Vec::new(),
            next_sequence: 1,
            commitlog: CommitLog::new(cfg.commitlog_segment),
        }
    }
}

/// One simulated cluster node.
#[derive(Debug)]
pub struct StorageNode {
    /// This node's id.
    pub id: NodeId,
    cfg: NodeConfig,
    tables: RwLock<HashMap<String, Mutex<TableStore>>>,
    up: AtomicBool,
    /// Permanently removed from service (decommissioned, or a joiner whose
    /// join aborted). A retired node never comes back up — its `NodeId` slot
    /// is kept only so ids stay stable.
    retired: AtomicBool,
    read_latency_us: AtomicU64,
    stats: NodeStats,
}

impl StorageNode {
    /// Creates an empty (up) node.
    pub fn new(id: NodeId, cfg: NodeConfig) -> StorageNode {
        StorageNode {
            id,
            cfg,
            tables: RwLock::new(HashMap::new()),
            up: AtomicBool::new(true),
            retired: AtomicBool::new(false),
            read_latency_us: AtomicU64::new(cfg.read_latency_us),
            stats: NodeStats::default(),
        }
    }

    /// Changes the simulated read service latency at runtime (failure and
    /// slow-replica injection in tests/benches).
    pub fn set_read_latency_us(&self, us: u64) {
        self.read_latency_us.store(us, Ordering::SeqCst);
    }

    /// Registers a table (idempotent).
    pub fn create_table(&self, name: &str) {
        let mut tables = self.tables.write();
        tables
            .entry(name.to_owned())
            .or_insert_with(|| Mutex::new(TableStore::new(&self.cfg)));
    }

    /// Liveness flag checked by coordinators.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Simulates failure/recovery. Retired nodes stay down forever.
    pub fn set_up(&self, up: bool) {
        if up && self.is_retired() {
            return;
        }
        self.up.store(up, Ordering::SeqCst);
    }

    /// Permanently removes the node from service: marks it down and blocks
    /// every future `set_up(true)` / `restart()` from reviving it.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
        self.up.store(false, Ordering::SeqCst);
    }

    /// Whether the node has been permanently removed from service.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    /// Applies a full stream chunk of mutations atomically from the
    /// receiver's point of view: either the node is up and every mutation
    /// lands (commit log first, so acked chunks survive a crash/restart),
    /// or the chunk is NAKed for the sender to retry.
    pub fn apply_chunk(&self, mutations: &[Mutation]) -> bool {
        if !self.is_up() {
            return false;
        }
        mutations.iter().all(|m| self.apply(m))
    }

    /// Applies one mutation (commit log first, then memtable), flushing
    /// and compacting if thresholds are crossed.
    pub fn apply(&self, mutation: &Mutation) -> bool {
        if !self.is_up() {
            return false;
        }
        let tables = self.tables.read();
        let Some(store) = tables.get(&mutation.table) else {
            return false;
        };
        let mut store = store.lock();
        store.commitlog.append(mutation.clone());
        if let Some(ts) = mutation.row_delete {
            store
                .memtable
                .delete_row(mutation.partition.clone(), mutation.clustering.clone(), ts);
        }
        if !mutation.cells.is_empty() {
            store.memtable.upsert(
                mutation.partition.clone(),
                mutation.clustering.clone(),
                mutation.cells.clone(),
            );
        }
        self.stats.record_write();
        if store.memtable.weight() >= self.cfg.flush_threshold {
            self.flush_locked(&mut store);
            self.maybe_compact_locked(&mut store);
        }
        true
    }

    /// Reads merged raw row entries for a partition range.
    pub fn read_raw(
        &self,
        table: &str,
        partition: &Key,
        range: &(Bound<Key>, Bound<Key>),
    ) -> Option<Vec<(Key, RowEntry)>> {
        if !self.is_up() {
            return None;
        }
        let latency = self.read_latency_us.load(Ordering::Relaxed);
        if latency > 0 {
            std::thread::sleep(std::time::Duration::from_micros(latency));
        }
        let tables = self.tables.read();
        let store = tables.get(table)?.lock();
        self.stats.record_read();
        let mut merged: std::collections::BTreeMap<Key, RowEntry> =
            std::collections::BTreeMap::new();
        for sst in &store.sstables {
            if self.cfg.use_bloom && !sst.may_contain(partition) {
                self.stats.record_bloom_skip();
                continue;
            }
            self.stats.record_sstable_probe();
            for (ck, entry) in sst.read_raw(partition, range, self.cfg.use_bloom) {
                merge_into(&mut merged, ck, entry);
            }
        }
        for (ck, entry) in store.memtable.read_raw(partition, range.clone()) {
            merge_into(&mut merged, ck, entry);
        }
        Some(merged.into_iter().collect())
    }

    /// Materialized read (visible rows only).
    pub fn read(
        &self,
        table: &str,
        partition: &Key,
        range: &(Bound<Key>, Bound<Key>),
    ) -> Option<Vec<Row>> {
        let raw = self.read_raw(table, partition, range)?;
        Some(
            raw.into_iter()
                .filter_map(|(ck, e)| {
                    e.visible().map(|cells| Row {
                        clustering: ck,
                        cells,
                    })
                })
                .collect(),
        )
    }

    /// All partition keys stored locally for `table` (memtable + SSTables).
    /// Drives token-range scans by the processing engine.
    pub fn local_partition_keys(&self, table: &str) -> Vec<Key> {
        let tables = self.tables.read();
        let Some(store) = tables.get(table) else {
            return Vec::new();
        };
        let store = store.lock();
        let mut keys: std::collections::BTreeSet<Key> =
            store.memtable.partition_keys().cloned().collect();
        for sst in &store.sstables {
            for (pk, _) in sst.partitions() {
                keys.insert(pk.clone());
            }
        }
        keys.into_iter().collect()
    }

    /// Forces a memtable flush.
    pub fn flush(&self, table: &str) {
        let tables = self.tables.read();
        if let Some(store) = tables.get(table) {
            let mut store = store.lock();
            self.flush_locked(&mut store);
        }
    }

    fn flush_locked(&self, store: &mut TableStore) {
        if store.memtable.is_empty() {
            return;
        }
        let data = store.memtable.drain_sorted();
        let seq = store.next_sequence;
        store.next_sequence += 1;
        store.sstables.push(SsTable::build(seq, data));
        store.commitlog.truncate_flushed();
        self.stats.record_flush();
    }

    /// Runs compaction if a bucket is ripe.
    pub fn maybe_compact(&self, table: &str) {
        let tables = self.tables.read();
        if let Some(store) = tables.get(table) {
            let mut store = store.lock();
            self.maybe_compact_locked(&mut store);
        }
    }

    fn maybe_compact_locked(&self, store: &mut TableStore) {
        while let Some(bucket) = compaction::pick_bucket(&store.sstables, &self.cfg.compaction) {
            let mut picked = Vec::with_capacity(bucket.len());
            // Remove in descending index order to keep indices valid.
            let mut idxs = bucket;
            idxs.sort_unstable_by(|a, b| b.cmp(a));
            for i in idxs {
                picked.push(store.sstables.remove(i));
            }
            let seq = store.next_sequence;
            store.next_sequence += 1;
            store.sstables.push(compaction::merge(picked, seq));
            self.stats.record_compaction();
        }
    }

    /// Simulates a crash/restart: memtable contents are rebuilt from the
    /// commit log. A retired node cannot restart.
    pub fn restart(&self) {
        if self.is_retired() {
            return;
        }
        let tables = self.tables.read();
        for store in tables.values() {
            let mut store = store.lock();
            // Crash: memtable lost.
            store.memtable = Memtable::new();
            // Recovery: replay retained commit-log records.
            for m in store.commitlog.replay() {
                if let Some(ts) = m.row_delete {
                    store
                        .memtable
                        .delete_row(m.partition.clone(), m.clustering.clone(), ts);
                }
                if !m.cells.is_empty() {
                    store.memtable.upsert(
                        m.partition.clone(),
                        m.clustering.clone(),
                        m.cells.clone(),
                    );
                }
            }
        }
        self.set_up(true);
    }

    /// Current SSTable count for a table (tests/benches).
    pub fn sstable_count(&self, table: &str) -> usize {
        let tables = self.tables.read();
        tables
            .get(table)
            .map(|s| s.lock().sstables.len())
            .unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

fn merge_into(merged: &mut std::collections::BTreeMap<Key, RowEntry>, ck: Key, entry: RowEntry) {
    match merged.remove(&ck) {
        None => {
            merged.insert(ck, entry);
        }
        Some(existing) => {
            merged.insert(ck, RowEntry::merge(existing, entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::full_range;
    use crate::types::Value;

    fn node(flush_threshold: usize) -> StorageNode {
        let n = StorageNode::new(
            NodeId(0),
            NodeConfig {
                flush_threshold,
                ..Default::default()
            },
        );
        n.create_table("t");
        n
    }

    fn upsert(n: &StorageNode, h: i64, ts: i64, v: i32, wts: u64) {
        let m = Mutation::upsert(
            "t",
            Key(vec![Value::BigInt(h)]),
            Key(vec![Value::Timestamp(ts)]),
            vec![("v".to_owned(), Value::Int(v))],
            wts,
        );
        assert!(n.apply(&m));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let n = node(1000);
        upsert(&n, 1, 10, 7, 1);
        let rows = n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cell("v"), Some(&Value::Int(7)));
    }

    #[test]
    fn reads_merge_memtable_over_sstables() {
        let n = node(1000);
        upsert(&n, 1, 10, 1, 1);
        n.flush("t");
        assert_eq!(n.sstable_count("t"), 1);
        upsert(&n, 1, 10, 2, 2); // newer write in memtable
        let rows = n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .unwrap();
        assert_eq!(rows[0].cell("v"), Some(&Value::Int(2)));
    }

    #[test]
    fn automatic_flush_and_compaction() {
        let n = node(8);
        for i in 0..100 {
            upsert(&n, i % 5, i, i as i32, i as u64);
        }
        // Flushes happened automatically...
        assert!(n.stats().flushes > 0);
        // ...and compaction kept the table count bounded.
        assert!(n.sstable_count("t") < 10, "{}", n.sstable_count("t"));
        // All data still readable.
        let total: usize = (0..5)
            .map(|h| {
                n.read("t", &Key(vec![Value::BigInt(h)]), &full_range())
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn down_node_rejects_operations() {
        let n = node(1000);
        upsert(&n, 1, 1, 1, 1);
        n.set_up(false);
        let m = Mutation::upsert(
            "t",
            Key(vec![Value::BigInt(1)]),
            Key(vec![Value::Timestamp(2)]),
            vec![("v".to_owned(), Value::Int(1))],
            2,
        );
        assert!(!n.apply(&m));
        assert!(n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .is_none());
        n.set_up(true);
        assert!(n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .is_some());
    }

    #[test]
    fn restart_replays_commitlog() {
        let n = node(1000); // nothing flushed -> everything in commit log
        for i in 0..20 {
            upsert(&n, 1, i, i as i32, i as u64);
        }
        n.restart();
        let rows = n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .unwrap();
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn restart_after_flush_loses_nothing() {
        let n = node(1000);
        for i in 0..10 {
            upsert(&n, 1, i, i as i32, i as u64);
        }
        n.flush("t");
        for i in 10..15 {
            upsert(&n, 1, i, i as i32, i as u64);
        }
        n.restart();
        let rows = n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .unwrap();
        assert_eq!(rows.len(), 15, "flushed + replayed rows");
    }

    #[test]
    fn delete_row_via_mutation() {
        let n = node(1000);
        upsert(&n, 1, 1, 1, 1);
        let d = Mutation::delete(
            "t",
            Key(vec![Value::BigInt(1)]),
            Key(vec![Value::Timestamp(1)]),
            5,
        );
        n.apply(&d);
        assert!(n
            .read("t", &Key(vec![Value::BigInt(1)]), &full_range())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn local_partition_keys_union_memtable_and_sstables() {
        let n = node(1000);
        upsert(&n, 1, 1, 1, 1);
        n.flush("t");
        upsert(&n, 2, 1, 1, 1);
        let keys = n.local_partition_keys("t");
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn retired_node_never_revives() {
        let n = node(1000);
        upsert(&n, 1, 1, 1, 1);
        n.retire();
        assert!(n.is_retired());
        assert!(!n.is_up());
        n.set_up(true);
        assert!(!n.is_up(), "set_up must not revive a retired node");
        n.restart();
        assert!(!n.is_up(), "restart must not revive a retired node");
    }

    #[test]
    fn apply_chunk_lands_all_or_naks() {
        let n = node(1000);
        let muts: Vec<Mutation> = (0..5)
            .map(|i| {
                Mutation::upsert(
                    "t",
                    Key(vec![Value::BigInt(1)]),
                    Key(vec![Value::Timestamp(i)]),
                    vec![("v".to_owned(), Value::Int(i as i32))],
                    i as u64 + 1,
                )
            })
            .collect();
        assert!(n.apply_chunk(&muts));
        assert_eq!(
            n.read("t", &Key(vec![Value::BigInt(1)]), &full_range())
                .unwrap()
                .len(),
            5
        );
        n.set_up(false);
        assert!(!n.apply_chunk(&muts), "down receiver must NAK the chunk");
    }

    #[test]
    fn unknown_table_apply_fails() {
        let n = node(1000);
        let m = Mutation::upsert("nope", Key(vec![]), Key(vec![]), vec![], 1);
        assert!(!n.apply(&m));
    }
}
