//! Murmur3-based partitioner: partition key bytes → 64-bit ring token.
//!
//! Matches Cassandra's `Murmur3Partitioner` approach: the token is the
//! first 64 bits of MurmurHash3 x64/128 over the encoded partition key.

use crate::types::Key;

/// A position on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub i64);

/// Hashes a partition key to its ring token.
pub fn token_for(key: &Key) -> Token {
    let bytes = key.encode();
    Token(murmur3_x64_128(&bytes, 0).0 as i64)
}

/// MurmurHash3 x64/128 (public-domain algorithm by Austin Appleby).
/// Returns the two 64-bit halves.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;
    let len = data.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let k1 = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
        let k2 = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));

        let k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dce729);

        let k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= (b as u64) << (8 * i);
        } else {
            k2 |= (b as u64) << (8 * (i - 8));
        }
    }
    if tail.len() > 8 {
        let k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        let k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn known_murmur3_vectors() {
        // Vectors cross-checked against the reference C++ implementation.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        let (h1, _) = murmur3_x64_128(b"hello", 0);
        assert_eq!(h1, 0xcbd8_a7b3_41bd_9b02);
        let (h1, h2) = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0);
        assert_eq!(h1, 0xe34b_bc7b_bc07_1b6c);
        assert_eq!(h2, 0x7a43_3ca9_c49a_9347);
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(murmur3_x64_128(b"abc", 0), murmur3_x64_128(b"abc", 1));
    }

    #[test]
    fn token_is_deterministic_and_key_sensitive() {
        let k1 = Key(vec![Value::BigInt(417_000), Value::text("MCE")]);
        let k2 = Key(vec![Value::BigInt(417_000), Value::text("GPU_DBE")]);
        assert_eq!(token_for(&k1), token_for(&k1));
        assert_ne!(token_for(&k1), token_for(&k2));
    }

    #[test]
    fn tokens_disperse_over_hours() {
        // Consecutive hours must not map to clustered tokens; check rough
        // dispersion by counting distinct leading bytes.
        let mut leading = std::collections::HashSet::new();
        for hour in 0..256i64 {
            let t = token_for(&Key(vec![Value::BigInt(hour), Value::text("MCE")]));
            leading.insert((t.0 as u64 >> 56) as u8);
        }
        assert!(leading.len() > 100, "got {}", leading.len());
    }

    #[test]
    fn all_tail_lengths_hash() {
        // Exercise every remainder branch length 0..=15.
        let data: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..=31 {
            seen.insert(murmur3_x64_128(&data[..n], 7));
        }
        assert_eq!(seen.len(), 32);
    }
}
