//! In-memory write buffer: partitions → clustering-sorted rows.

use crate::types::{Cell, Key, Row, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Stored form of one clustered row: named cells plus an optional row
/// tombstone. A cell is visible only if it is newer than the tombstone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowEntry {
    /// Cells by column name.
    pub cells: BTreeMap<String, Cell>,
    /// Row-level delete timestamp, if any.
    pub deleted_at: Option<u64>,
}

impl RowEntry {
    /// Applies new cells (last-write-wins per cell).
    pub fn upsert(&mut self, cells: impl IntoIterator<Item = (String, Cell)>) {
        for (name, cell) in cells {
            match self.cells.get_mut(&name) {
                Some(existing) => *existing = Cell::merge(existing, &cell),
                None => {
                    self.cells.insert(name, cell);
                }
            }
        }
    }

    /// Marks the whole row deleted at `ts`.
    pub fn delete(&mut self, ts: u64) {
        self.deleted_at = Some(self.deleted_at.map_or(ts, |old| old.max(ts)));
    }

    /// Merges two stored versions of the same row.
    pub fn merge(mut a: RowEntry, b: RowEntry) -> RowEntry {
        if let Some(ts) = b.deleted_at {
            a.delete(ts);
        }
        a.upsert(b.cells);
        a
    }

    /// Materializes the visible cells, honoring tombstones. Returns `None`
    /// when nothing is visible (fully deleted row).
    pub fn visible(&self) -> Option<BTreeMap<String, Value>> {
        let floor = self.deleted_at;
        let cells: BTreeMap<String, Value> = self
            .cells
            .iter()
            .filter(|(_, c)| floor.is_none_or(|ts| c.write_ts > ts))
            .filter_map(|(n, c)| c.value.clone().map(|v| (n.clone(), v)))
            .collect();
        if cells.is_empty() {
            None
        } else {
            Some(cells)
        }
    }

    /// Number of stored cells (size accounting).
    pub fn weight(&self) -> usize {
        self.cells.len() + 1
    }
}

/// One partition: clustering key → row, kept sorted (the paper's
/// "time series representation of events that is one hour long").
pub type Partition = BTreeMap<Key, RowEntry>;

/// The memtable for a single table on a single node.
#[derive(Debug, Default)]
pub struct Memtable {
    partitions: BTreeMap<Key, Partition>,
    weight: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Upserts cells into a clustered row.
    pub fn upsert(&mut self, partition: Key, clustering: Key, cells: Vec<(String, Cell)>) {
        let row = self
            .partitions
            .entry(partition)
            .or_default()
            .entry(clustering)
            .or_default();
        self.weight -= row.weight().min(self.weight);
        row.upsert(cells);
        self.weight += row.weight();
    }

    /// Row-level delete.
    pub fn delete_row(&mut self, partition: Key, clustering: Key, ts: u64) {
        let row = self
            .partitions
            .entry(partition)
            .or_default()
            .entry(clustering)
            .or_default();
        row.delete(ts);
        self.weight += 1;
    }

    /// Reads raw row entries of one partition within a clustering range.
    pub fn read_raw(
        &self,
        partition: &Key,
        range: (Bound<Key>, Bound<Key>),
    ) -> Vec<(Key, RowEntry)> {
        match self.partitions.get(partition) {
            None => Vec::new(),
            Some(p) => p
                .range(range)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Materialized read of one partition (visible rows only).
    pub fn read(&self, partition: &Key, range: (Bound<Key>, Bound<Key>)) -> Vec<Row> {
        self.read_raw(partition, range)
            .into_iter()
            .filter_map(|(k, e)| {
                e.visible().map(|cells| Row {
                    clustering: k,
                    cells,
                })
            })
            .collect()
    }

    /// Approximate size in cells; drives flush decisions.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Number of partitions currently buffered.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Drains the memtable into sorted `(partition, rows)` pairs for an
    /// SSTable flush.
    pub fn drain_sorted(&mut self) -> Vec<(Key, Vec<(Key, RowEntry)>)> {
        self.weight = 0;
        std::mem::take(&mut self.partitions)
            .into_iter()
            .map(|(pk, p)| (pk, p.into_iter().collect()))
            .collect()
    }

    /// Iterates all partition keys (for token-range scans).
    pub fn partition_keys(&self) -> impl Iterator<Item = &Key> {
        self.partitions.keys()
    }
}

/// Convenience: full unbounded clustering range.
pub fn full_range() -> (Bound<Key>, Bound<Key>) {
    (Bound::Unbounded, Bound::Unbounded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(h: i64) -> Key {
        Key(vec![Value::BigInt(h)])
    }

    fn ck(ts: i64) -> Key {
        Key(vec![Value::Timestamp(ts)])
    }

    fn cellv(v: i32, ts: u64) -> Cell {
        Cell::live(Value::Int(v), ts)
    }

    #[test]
    fn rows_stay_sorted_by_clustering_key() {
        let mut m = Memtable::new();
        for ts in [5i64, 1, 3, 2, 4] {
            m.upsert(pk(1), ck(ts), vec![("amount".into(), cellv(ts as i32, 1))]);
        }
        let rows = m.read(&pk(1), full_range());
        let keys: Vec<i64> = rows
            .iter()
            .map(|r| match r.clustering.0[0] {
                Value::Timestamp(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn range_reads_are_inclusive_exclusive_aware() {
        let mut m = Memtable::new();
        for ts in 0..10 {
            m.upsert(pk(1), ck(ts), vec![("amount".into(), cellv(1, 1))]);
        }
        let rows = m.read(&pk(1), (Bound::Included(ck(3)), Bound::Excluded(ck(7))));
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].clustering, ck(3));
        assert_eq!(rows[3].clustering, ck(6));
    }

    #[test]
    fn lww_update_within_memtable() {
        let mut m = Memtable::new();
        m.upsert(pk(1), ck(1), vec![("amount".into(), cellv(1, 10))]);
        m.upsert(pk(1), ck(1), vec![("amount".into(), cellv(2, 20))]);
        // Stale write loses.
        m.upsert(pk(1), ck(1), vec![("amount".into(), cellv(3, 15))]);
        let rows = m.read(&pk(1), full_range());
        assert_eq!(rows[0].cell("amount"), Some(&Value::Int(2)));
    }

    #[test]
    fn row_tombstone_hides_older_cells_only() {
        let mut m = Memtable::new();
        m.upsert(pk(1), ck(1), vec![("a".into(), cellv(1, 10))]);
        m.delete_row(pk(1), ck(1), 15);
        assert!(m.read(&pk(1), full_range()).is_empty());
        // A newer write resurrects the row.
        m.upsert(pk(1), ck(1), vec![("a".into(), cellv(2, 20))]);
        let rows = m.read(&pk(1), full_range());
        assert_eq!(rows[0].cell("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn missing_partition_reads_empty() {
        let m = Memtable::new();
        assert!(m.read(&pk(42), full_range()).is_empty());
    }

    #[test]
    fn drain_empties_and_sorts() {
        let mut m = Memtable::new();
        m.upsert(pk(2), ck(1), vec![("a".into(), cellv(1, 1))]);
        m.upsert(pk(1), ck(2), vec![("a".into(), cellv(1, 1))]);
        m.upsert(pk(1), ck(1), vec![("a".into(), cellv(1, 1))]);
        let drained = m.drain_sorted();
        assert!(m.is_empty());
        assert_eq!(m.weight(), 0);
        assert_eq!(drained.len(), 2);
        assert!(drained[0].0 < drained[1].0);
        assert_eq!(drained[0].1.len(), 2);
        assert!(drained[0].1[0].0 < drained[0].1[1].0);
    }

    #[test]
    fn weight_grows_with_cells() {
        let mut m = Memtable::new();
        assert_eq!(m.weight(), 0);
        m.upsert(pk(1), ck(1), vec![("a".into(), cellv(1, 1))]);
        let w1 = m.weight();
        m.upsert(
            pk(1),
            ck(2),
            vec![("a".into(), cellv(1, 1)), ("b".into(), cellv(2, 1))],
        );
        assert!(m.weight() > w1);
    }

    #[test]
    fn merge_row_entries_combines_tombstones_and_cells() {
        let mut a = RowEntry::default();
        a.upsert([("x".to_owned(), cellv(1, 5))]);
        let mut b = RowEntry::default();
        b.delete(3);
        b.upsert([("y".to_owned(), cellv(2, 4))]);
        let m = RowEntry::merge(a, b);
        assert_eq!(m.deleted_at, Some(3));
        let vis = m.visible().unwrap();
        assert_eq!(vis.get("x"), Some(&Value::Int(1)));
        assert_eq!(vis.get("y"), Some(&Value::Int(2)));
    }
}
