//! Bloom filter guarding SSTable partition lookups.

use crate::partitioner::murmur3_x64_128;

/// A standard k-hash bloom filter over byte keys.
///
/// Double hashing (`h1 + i·h2`) derives the k probe positions from one
/// murmur3 128-bit hash, the same trick Cassandra uses.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: usize,
    k: u32,
}

impl BloomFilter {
    /// Sizes the filter for `expected` keys at roughly `fp_rate` false
    /// positives (clamped to sane bounds).
    pub fn new(expected: usize, fp_rate: f64) -> BloomFilter {
        let expected = expected.max(1);
        let fp = fp_rate.clamp(1e-6, 0.5);
        // m = -n ln p / (ln 2)^2 ; k = m/n ln 2
        let m = (-(expected as f64) * fp.ln() / (2f64.ln().powi(2))).ceil() as usize;
        let nbits = m.max(64);
        let k = ((nbits as f64 / expected as f64) * 2f64.ln())
            .round()
            .max(1.0) as u32;
        BloomFilter {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
            k: k.min(16),
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = murmur3_x64_128(key, 0);
        for i in 0..self.k {
            let bit = self.probe(h1, h2, i);
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// True if the key *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = murmur3_x64_128(key, 0);
        (0..self.k).all(|i| {
            let bit = self.probe(h1, h2, i);
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    #[inline]
    fn probe(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits as u64) as usize
    }

    /// Memory footprint in bits (for stats).
    pub fn nbits(&self) -> usize {
        self.nbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0u32..1000 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0u32..1000 {
            assert!(f.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_roughly_bounded() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0u32..1000 {
            f.insert(&i.to_le_bytes());
        }
        let fps = (10_000u32..20_000)
            .filter(|i| f.may_contain(&i.to_le_bytes()))
            .count();
        // 1% nominal; allow generous slack for variance.
        assert!(fps < 500, "false positives: {fps}/10000");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(10, 0.01);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn degenerate_params_are_clamped() {
        let mut f = BloomFilter::new(0, -3.0);
        f.insert(b"x");
        assert!(f.may_contain(b"x"));
        assert!(f.nbits() >= 64);
    }
}
