//! Byte-budgeted LRU caching for the coordinator read path.
//!
//! Two things live here:
//!
//! * [`LruCache`] — a generic byte-budgeted LRU keyed by opaque bytes. The
//!   cluster's partition-block cache uses it directly, and the analytics
//!   result cache in `core` reuses it with its own entry type.
//! * [`BlockEntry`] + [`block_key`] — the partition-block cache entry and
//!   canonical key for memoizing merged, read-repaired partition reads.
//!
//! Correctness does not depend on eviction or explicit invalidation: every
//! entry carries the partition's data version and the cluster topology
//! epoch at fill time, and the coordinator re-validates both on every
//! lookup (see [`Cluster::data_version`](crate::Cluster::data_version)). A
//! stale entry is indistinguishable from a miss.

use crate::query::{Consistency, ReadPlan};
use crate::types::{Key, Row};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// A byte-budgeted LRU map from opaque byte keys to values.
///
/// Recency is tracked with a monotonic tick per touch; eviction removes the
/// least-recently-used entries until the accounted footprint fits the
/// budget. A budget of zero disables the cache entirely (inserts are
/// dropped, lookups always miss).
pub struct LruCache<V> {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<Vec<u8>, Slot<V>>,
    recency: BTreeMap<u64, Vec<u8>>,
}

struct Slot<V> {
    value: V,
    bytes: usize,
    tick: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache bounded by `budget` accounted bytes.
    pub fn new(budget: usize) -> LruCache<V> {
        LruCache {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Replaces the byte budget; shrinking evicts LRU entries to fit and a
    /// budget of zero clears the cache. Returns the number evicted.
    pub fn set_budget(&mut self, budget: usize) -> u64 {
        self.budget = budget;
        self.evict_to_fit()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accounted bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<&V> {
        let slot = self.map.get_mut(key)?;
        self.recency.remove(&slot.tick);
        self.tick += 1;
        slot.tick = self.tick;
        self.recency.insert(slot.tick, key.to_vec());
        Some(&self.map[key].value)
    }

    /// Inserts (or replaces) an entry accounted at `bytes`, then evicts
    /// LRU entries until the budget fits. Returns the number evicted.
    /// Entries larger than the whole budget are not stored.
    pub fn insert(&mut self, key: Vec<u8>, value: V, bytes: usize) -> u64 {
        if bytes > self.budget {
            // Would evict everything and still not fit: keep the working set.
            return 0;
        }
        self.remove(&key);
        self.tick += 1;
        self.used += bytes;
        self.recency.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Slot {
                value,
                bytes,
                tick: self.tick,
            },
        );
        self.evict_to_fit()
    }

    /// Removes one entry.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.recency.remove(&slot.tick);
        self.used -= slot.bytes;
        Some(slot.value)
    }

    /// Keeps only entries for which `keep` returns true; returns the number
    /// dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&[u8], &V) -> bool) -> u64 {
        let doomed: Vec<Vec<u8>> = self
            .map
            .iter()
            .filter(|(k, slot)| !keep(k, &slot.value))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            self.remove(k);
        }
        doomed.len() as u64
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.used = 0;
    }

    fn evict_to_fit(&mut self) -> u64 {
        let mut evicted = 0;
        while self.used > self.budget {
            let Some((&tick, _)) = self.recency.iter().next() else {
                break;
            };
            let key = self.recency.remove(&tick).expect("recency entry exists");
            if let Some(slot) = self.map.remove(&key) {
                self.used -= slot.bytes;
            }
            evicted += 1;
        }
        evicted
    }
}

impl<V> std::fmt::Debug for LruCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("budget", &self.budget)
            .field("used", &self.used)
            .field("entries", &self.map.len())
            .finish()
    }
}

/// One memoized partition read: the merged, read-repaired, ordered and
/// limited rows [`Cluster::read`](crate::Cluster::read) produced, tagged
/// with the partition data version and topology epoch observed *before*
/// the replica reads were issued.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// Final rows exactly as the uncached read returned them.
    pub rows: Vec<Row>,
    /// [`Cluster::data_version`](crate::Cluster::data_version) at fill time.
    pub version: u64,
    /// [`Cluster::topology_epoch`](crate::Cluster::topology_epoch) at fill
    /// time.
    pub epoch: u64,
}

fn encode_bound(out: &mut Vec<u8>, bound: &Bound<Key>) {
    match bound {
        Bound::Unbounded => out.push(0),
        Bound::Included(k) => {
            out.push(1);
            encode_key(out, k);
        }
        Bound::Excluded(k) => {
            out.push(2);
            encode_key(out, k);
        }
    }
}

fn encode_key(out: &mut Vec<u8>, key: &Key) {
    let bytes = key.encode();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

/// Canonical cache key for a partition block: every field of the plan that
/// can change the result, plus the consistency level (reads at different
/// consistency levels may legitimately observe different replica states).
pub fn block_key(plan: &ReadPlan, consistency: Consistency) -> Vec<u8> {
    let mut out = Vec::with_capacity(plan.table.len() + 64);
    out.extend_from_slice(&(plan.table.len() as u32).to_le_bytes());
    out.extend_from_slice(plan.table.as_bytes());
    encode_key(&mut out, &plan.partition);
    encode_bound(&mut out, &plan.range.0);
    encode_bound(&mut out, &plan.range.1);
    match plan.limit {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u64).to_le_bytes());
        }
    }
    out.push(plan.descending as u8);
    out.push(match consistency {
        Consistency::One => 0,
        Consistency::Quorum => 1,
        Consistency::All => 2,
    });
    out
}

/// Approximate heap footprint of a result block, used for byte budgeting.
/// Values are costed at their binary encoding plus fixed per-row and
/// per-cell overheads; exactness does not matter, monotonicity in data
/// size does.
pub fn rows_footprint(rows: &[Row]) -> usize {
    let mut scratch = Vec::new();
    let mut n = 64;
    for row in rows {
        n += 48;
        for v in &row.clustering.0 {
            v.encode_into(&mut scratch);
        }
        for (name, v) in &row.cells {
            n += name.len() + 32;
            v.encode_into(&mut scratch);
        }
    }
    n + scratch.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::full_range;
    use crate::types::Value;

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut c: LruCache<u32> = LruCache::new(30);
        c.insert(b"a".to_vec(), 1, 10);
        c.insert(b"b".to_vec(), 2, 10);
        c.insert(b"c".to_vec(), 3, 10);
        assert_eq!(c.len(), 3);
        // Touch "a" so "b" is now the LRU entry.
        assert_eq!(c.get(b"a"), Some(&1));
        let evicted = c.insert(b"d".to_vec(), 4, 10);
        assert_eq!(evicted, 1);
        assert!(c.get(b"b").is_none(), "LRU entry evicted");
        assert_eq!(c.get(b"a"), Some(&1));
        assert_eq!(c.get(b"d"), Some(&4));
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn zero_budget_disables_and_oversized_entries_skip() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert_eq!(c.insert(b"a".to_vec(), 1, 1), 0);
        assert!(c.is_empty());
        let mut c: LruCache<u32> = LruCache::new(10);
        c.insert(b"a".to_vec(), 1, 8);
        // An entry bigger than the whole budget never displaces the
        // working set.
        c.insert(b"huge".to_vec(), 2, 11);
        assert_eq!(c.get(b"a"), Some(&1));
        assert!(c.get(b"huge").is_none());
    }

    #[test]
    fn replace_reaccounts_bytes_and_shrink_evicts() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.insert(b"a".to_vec(), 1, 40);
        c.insert(b"a".to_vec(), 2, 60);
        assert_eq!(c.used_bytes(), 60);
        assert_eq!(c.get(b"a"), Some(&2));
        c.insert(b"b".to_vec(), 3, 40);
        assert_eq!(c.set_budget(40), 1, "shrink evicts the older entry");
        assert_eq!(c.get(b"b"), Some(&3));
        assert_eq!(c.set_budget(0), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.insert(b"keep".to_vec(), 1, 10);
        c.insert(b"drop".to_vec(), 2, 10);
        assert_eq!(c.retain(|_, v| *v == 1), 1);
        assert_eq!(c.get(b"keep"), Some(&1));
        assert!(c.get(b"drop").is_none());
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn block_keys_distinguish_every_plan_field() {
        let base = ReadPlan {
            table: "event_by_time".into(),
            partition: Key(vec![Value::BigInt(1), Value::text("MCE")]),
            range: full_range(),
            limit: None,
            descending: false,
        };
        let k0 = block_key(&base, Consistency::Quorum);
        let mut other = base.clone();
        other.partition = Key(vec![Value::BigInt(2), Value::text("MCE")]);
        assert_ne!(k0, block_key(&other, Consistency::Quorum));
        let mut other = base.clone();
        other.limit = Some(5);
        assert_ne!(k0, block_key(&other, Consistency::Quorum));
        let mut other = base.clone();
        other.descending = true;
        assert_ne!(k0, block_key(&other, Consistency::Quorum));
        let mut other = base.clone();
        other.range.0 = Bound::Included(Key(vec![Value::Timestamp(7)]));
        assert_ne!(k0, block_key(&other, Consistency::Quorum));
        assert_ne!(k0, block_key(&base, Consistency::One));
        assert_eq!(k0, block_key(&base.clone(), Consistency::Quorum));
    }
}
