//! Consistent-hash token ring with virtual nodes and simple replication.
//!
//! Mirrors Cassandra's masterless design: each physical node owns several
//! vnode tokens; a partition's replicas are the first `rf` *distinct* nodes
//! found walking clockwise from the partition token.

use crate::partitioner::{murmur3_x64_128, Token};

/// Identifies a cluster node (dense indices `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// The token ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(token, owner)` sorted by token.
    entries: Vec<(Token, NodeId)>,
    nodes: usize,
    replication_factor: usize,
}

impl Ring {
    /// Builds a ring of `nodes` physical nodes with `vnodes` tokens each.
    /// Tokens are derived deterministically from `(node, vnode)` so cluster
    /// layouts are reproducible.
    pub fn new(nodes: usize, vnodes: usize, replication_factor: usize) -> Ring {
        assert!(nodes > 0, "ring needs at least one node");
        assert!(vnodes > 0, "each node needs at least one vnode");
        assert!(
            replication_factor >= 1 && replication_factor <= nodes,
            "replication factor must be in 1..=nodes"
        );
        let mut entries = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let seed = ((node as u64) << 32) | v as u64;
                let (h, _) = murmur3_x64_128(&seed.to_le_bytes(), 0x5ca1ab1e);
                entries.push((Token(h as i64), NodeId(node)));
            }
        }
        entries.sort_unstable();
        entries.dedup_by_key(|e| e.0);
        Ring {
            entries,
            nodes,
            replication_factor,
        }
    }

    /// Number of physical nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// The primary replica for a token (first owner clockwise).
    pub fn primary(&self, token: Token) -> NodeId {
        self.replicas(token)[0]
    }

    /// The ordered replica set for a token: the first `rf` distinct nodes
    /// walking clockwise.
    pub fn replicas(&self, token: Token) -> Vec<NodeId> {
        let start = self
            .entries
            .partition_point(|(t, _)| *t < token)
            // Wrap past the last token back to the ring start.
            % self.entries.len();
        let mut out = Vec::with_capacity(self.replication_factor);
        for i in 0..self.entries.len() {
            let (_, node) = self.entries[(start + i) % self.entries.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.replication_factor {
                    break;
                }
            }
        }
        out
    }

    /// All vnode tokens owned by `node`, used for token-range scans.
    pub fn tokens_of(&self, node: NodeId) -> Vec<Token> {
        self.entries
            .iter()
            .filter(|(_, n)| *n == node)
            .map(|(t, _)| *t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::token_for;
    use crate::types::{Key, Value};

    #[test]
    fn replicas_are_distinct_and_sized_rf() {
        let ring = Ring::new(8, 16, 3);
        for h in 0..200i64 {
            let t = token_for(&Key(vec![Value::BigInt(h)]));
            let reps = ring.replicas(t);
            assert_eq!(reps.len(), 3);
            let set: std::collections::HashSet<_> = reps.iter().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let r1 = Ring::new(8, 16, 3);
        let r2 = Ring::new(8, 16, 3);
        let t = Token(42);
        assert_eq!(r1.replicas(t), r2.replicas(t));
    }

    #[test]
    fn rf_one_single_replica() {
        let ring = Ring::new(4, 8, 1);
        let t = Token(-7);
        assert_eq!(ring.replicas(t).len(), 1);
        assert_eq!(ring.primary(t), ring.replicas(t)[0]);
    }

    #[test]
    fn wraparound_at_ring_end() {
        let ring = Ring::new(4, 8, 2);
        // A token beyond the maximum entry must wrap to the ring start.
        let reps = ring.replicas(Token(i64::MAX));
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn vnodes_spread_load() {
        // With vnodes, per-node primary ownership of many random keys
        // should be roughly balanced (coefficient of variation < 0.5).
        let ring = Ring::new(8, 64, 1);
        let mut counts = vec![0usize; 8];
        for i in 0..20_000i64 {
            let t = token_for(&Key(vec![Value::BigInt(i)]));
            counts[ring.primary(t).0] += 1;
        }
        let mean = 20_000.0 / 8.0;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 8.0;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.5, "cv = {cv}, counts = {counts:?}");
    }

    #[test]
    fn tokens_of_partitions_the_ring() {
        let ring = Ring::new(4, 8, 2);
        let total: usize = (0..4).map(|n| ring.tokens_of(NodeId(n)).len()).sum();
        assert_eq!(total, ring.entries.len());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn rf_larger_than_nodes_panics() {
        Ring::new(2, 4, 3);
    }
}
