//! Consistent-hash token ring with virtual nodes and simple replication.
//!
//! Mirrors Cassandra's masterless design: each physical node owns several
//! vnode tokens; a partition's replicas are the first `rf` *distinct* nodes
//! found walking clockwise from the partition token.
//!
//! Membership is explicit: a ring is built from a member list, and
//! [`Ring::with_member`] / [`Ring::without_member`] derive the ring a live
//! join or decommission converges to. Because every node's vnode tokens
//! are a pure function of its id, membership changes move only the ranges
//! adjacent to the added/removed tokens — the consistent-hashing minimal
//! movement property the paper's Cassandra deployment relies on when
//! scaling the ring under live ingest.

use crate::partitioner::{murmur3_x64_128, Token};

/// Identifies a cluster node (dense indices `0..n`; ids are stable for the
/// cluster's lifetime — a decommissioned node's id is never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// The token ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(token, owner)` sorted by token.
    entries: Vec<(Token, NodeId)>,
    /// Current members, sorted by id.
    members: Vec<NodeId>,
    vnodes: usize,
    replication_factor: usize,
}

impl Ring {
    /// Builds a ring of `nodes` physical nodes (`NodeId(0..nodes)`) with
    /// `vnodes` tokens each. Tokens are derived deterministically from
    /// `(node, vnode)` so cluster layouts are reproducible.
    pub fn new(nodes: usize, vnodes: usize, replication_factor: usize) -> Ring {
        Ring::from_members((0..nodes).map(NodeId).collect(), vnodes, replication_factor)
    }

    /// Builds a ring from an explicit member list. Panics when the member
    /// list is empty, `vnodes` is zero, or the replication factor does not
    /// fit the membership.
    pub fn from_members(
        mut members: Vec<NodeId>,
        vnodes: usize,
        replication_factor: usize,
    ) -> Ring {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "ring needs at least one node");
        assert!(vnodes > 0, "each node needs at least one vnode");
        assert!(
            replication_factor >= 1 && replication_factor <= members.len(),
            "replication factor must be in 1..=nodes"
        );
        let mut entries = Vec::with_capacity(members.len() * vnodes);
        for node in &members {
            for v in 0..vnodes {
                // Tokens depend only on (node id, vnode), never on the
                // membership: adding or removing a member leaves every
                // other member's tokens in place, so only the ranges next
                // to the changed tokens move owners.
                let seed = ((node.0 as u64) << 32) | v as u64;
                let (h, _) = murmur3_x64_128(&seed.to_le_bytes(), 0x5ca1ab1e);
                entries.push((Token(h as i64), *node));
            }
        }
        entries.sort_unstable();
        entries.dedup_by_key(|e| e.0);
        Ring {
            entries,
            members,
            vnodes,
            replication_factor,
        }
    }

    /// The ring this one becomes when `node` joins.
    pub fn with_member(&self, node: NodeId) -> Ring {
        let mut members = self.members.clone();
        members.push(node);
        Ring::from_members(members, self.vnodes, self.replication_factor)
    }

    /// The ring this one becomes when `node` leaves. Panics when the
    /// remaining membership no longer fits the replication factor.
    pub fn without_member(&self, node: NodeId) -> Ring {
        let members: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|m| *m != node)
            .collect();
        Ring::from_members(members, self.vnodes, self.replication_factor)
    }

    /// Current members, sorted by id.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// The primary replica for a token (first owner clockwise).
    pub fn primary(&self, token: Token) -> NodeId {
        self.replicas(token)[0]
    }

    /// The ordered replica set for a token: the first `rf` distinct nodes
    /// walking clockwise.
    pub fn replicas(&self, token: Token) -> Vec<NodeId> {
        let start = self
            .entries
            .partition_point(|(t, _)| *t < token)
            // Wrap past the last token back to the ring start.
            % self.entries.len();
        let mut out = Vec::with_capacity(self.replication_factor);
        for i in 0..self.entries.len() {
            let (_, node) = self.entries[(start + i) % self.entries.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.replication_factor {
                    break;
                }
            }
        }
        out
    }

    /// All vnode tokens owned by `node`, used for token-range scans.
    pub fn tokens_of(&self, node: NodeId) -> Vec<Token> {
        self.entries
            .iter()
            .filter(|(_, n)| *n == node)
            .map(|(t, _)| *t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::token_for;
    use crate::types::{Key, Value};

    #[test]
    fn replicas_are_distinct_and_sized_rf() {
        let ring = Ring::new(8, 16, 3);
        for h in 0..200i64 {
            let t = token_for(&Key(vec![Value::BigInt(h)]));
            let reps = ring.replicas(t);
            assert_eq!(reps.len(), 3);
            let set: std::collections::HashSet<_> = reps.iter().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let r1 = Ring::new(8, 16, 3);
        let r2 = Ring::new(8, 16, 3);
        let t = Token(42);
        assert_eq!(r1.replicas(t), r2.replicas(t));
    }

    #[test]
    fn rf_one_single_replica() {
        let ring = Ring::new(4, 8, 1);
        let t = Token(-7);
        assert_eq!(ring.replicas(t).len(), 1);
        assert_eq!(ring.primary(t), ring.replicas(t)[0]);
    }

    #[test]
    fn wraparound_at_ring_end() {
        let ring = Ring::new(4, 8, 2);
        // A token beyond the maximum entry must wrap to the ring start.
        let reps = ring.replicas(Token(i64::MAX));
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn vnodes_spread_load() {
        // With vnodes, per-node primary ownership of many random keys
        // should be roughly balanced (coefficient of variation < 0.5).
        let ring = Ring::new(8, 64, 1);
        let mut counts = vec![0usize; 8];
        for i in 0..20_000i64 {
            let t = token_for(&Key(vec![Value::BigInt(i)]));
            counts[ring.primary(t).0] += 1;
        }
        let mean = 20_000.0 / 8.0;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 8.0;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.5, "cv = {cv}, counts = {counts:?}");
    }

    #[test]
    fn tokens_of_partitions_the_ring() {
        let ring = Ring::new(4, 8, 2);
        let total: usize = (0..4).map(|n| ring.tokens_of(NodeId(n)).len()).sum();
        assert_eq!(total, ring.entries.len());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn rf_larger_than_nodes_panics() {
        Ring::new(2, 4, 3);
    }

    #[test]
    fn membership_ops_roundtrip() {
        let ring = Ring::new(4, 8, 2);
        assert_eq!(
            ring.members(),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        let grown = ring.with_member(NodeId(4));
        assert_eq!(grown.node_count(), 5);
        assert!(grown.contains(NodeId(4)));
        let shrunk = grown.without_member(NodeId(4));
        assert_eq!(shrunk.members(), ring.members());
        // Identical membership ⇒ identical placement.
        for h in 0..50i64 {
            let t = token_for(&Key(vec![Value::BigInt(h)]));
            assert_eq!(shrunk.replicas(t), ring.replicas(t));
        }
    }

    #[test]
    fn sparse_membership_matches_dense_equivalent() {
        // A ring with a decommissioned middle node behaves exactly like a
        // ring built directly from the surviving members.
        let survivors = vec![NodeId(0), NodeId(2), NodeId(3)];
        let direct = Ring::from_members(survivors, 8, 2);
        let derived = Ring::new(4, 8, 2).without_member(NodeId(1));
        for h in 0..100i64 {
            let t = token_for(&Key(vec![Value::BigInt(h)]));
            assert_eq!(direct.replicas(t), derived.replicas(t));
        }
    }

    #[test]
    fn join_moves_only_ranges_gained_by_the_joiner() {
        // Consistent hashing: adding a member must never reshuffle ranges
        // between existing members — every replica-set change involves the
        // joiner gaining a slot.
        let old = Ring::new(6, 16, 3);
        let new = old.with_member(NodeId(6));
        let mut moved = 0;
        for h in 0..2_000i64 {
            let t = token_for(&Key(vec![Value::BigInt(h)]));
            let before = old.replicas(t);
            let after = new.replicas(t);
            if before != after {
                moved += 1;
                assert!(
                    after.contains(&NodeId(6)),
                    "changed replica set must include the joiner: {before:?} -> {after:?}"
                );
            }
        }
        // Roughly rf/n of the keyspace should move — never most of it.
        assert!(moved > 0, "the joiner must gain some ranges");
        assert!(moved < 2_000 / 2, "minimal movement violated: {moved}/2000");
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn without_member_below_rf_panics() {
        Ring::new(3, 8, 3).without_member(NodeId(0));
    }
}
