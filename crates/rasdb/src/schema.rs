//! Table schemas: partition keys, clustering keys, and typed columns.

use crate::error::DbError;
use crate::types::Value;

/// Column data types (the CQL subset the framework needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// UTF-8 text.
    Text,
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    BigInt,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
    /// Milliseconds since epoch.
    Timestamp,
    /// Raw bytes.
    Blob,
    /// List of values.
    List,
    /// String-keyed map; the paper's "Other Info" columns with
    /// per-application sub-columns map onto this.
    Map,
}

impl ColumnType {
    /// Whether `value` inhabits this type.
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (ColumnType::Text, Value::Text(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::BigInt, Value::BigInt(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Timestamp, Value::Timestamp(_))
                | (ColumnType::Blob, Value::Blob(_))
                | (ColumnType::List, Value::List(_))
                | (ColumnType::Map, Value::Map(_))
        )
    }

    /// CQL spelling.
    pub fn cql_name(&self) -> &'static str {
        match self {
            ColumnType::Text => "text",
            ColumnType::Int => "int",
            ColumnType::BigInt => "bigint",
            ColumnType::Double => "double",
            ColumnType::Bool => "boolean",
            ColumnType::Timestamp => "timestamp",
            ColumnType::Blob => "blob",
            ColumnType::List => "list",
            ColumnType::Map => "map",
        }
    }

    /// Parses a CQL type name.
    pub fn from_cql_name(name: &str) -> Option<ColumnType> {
        Some(match name.to_ascii_lowercase().as_str() {
            "text" | "varchar" | "ascii" => ColumnType::Text,
            "int" => ColumnType::Int,
            "bigint" | "counter" => ColumnType::BigInt,
            "double" | "float" => ColumnType::Double,
            "boolean" => ColumnType::Bool,
            "timestamp" => ColumnType::Timestamp,
            "blob" => ColumnType::Blob,
            "list" => ColumnType::List,
            "map" => ColumnType::Map,
            _ => return None,
        })
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ctype: ColumnType,
}

/// Which role a column plays in the primary key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRole {
    /// Hash-distributed partition key component.
    Partition,
    /// Sort-order clustering key component.
    Clustering,
    /// Regular (non-key) column.
    Regular,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Partition-key columns, in key order.
    pub partition_key: Vec<ColumnDef>,
    /// Clustering-key columns, in sort order.
    pub clustering_key: Vec<ColumnDef>,
    /// Regular columns.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Starts a schema builder.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            name: name.into(),
            partition_key: Vec::new(),
            clustering_key: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// The role of `column` in this table, or `None` if unknown.
    pub fn role_of(&self, column: &str) -> Option<KeyRole> {
        if self.partition_key.iter().any(|c| c.name == column) {
            Some(KeyRole::Partition)
        } else if self.clustering_key.iter().any(|c| c.name == column) {
            Some(KeyRole::Clustering)
        } else if self.columns.iter().any(|c| c.name == column) {
            Some(KeyRole::Regular)
        } else {
            None
        }
    }

    /// Looks up any column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.partition_key
            .iter()
            .chain(&self.clustering_key)
            .chain(&self.columns)
            .find(|c| c.name == name)
    }

    /// Validates an insert's `(column, value)` list: every partition and
    /// clustering key present and typed; regular columns known and typed.
    pub fn validate_insert(&self, values: &[(String, Value)]) -> Result<(), DbError> {
        for key in self.partition_key.iter().chain(&self.clustering_key) {
            let found = values.iter().find(|(n, _)| *n == key.name).ok_or_else(|| {
                DbError::SchemaViolation(format!(
                    "missing key column '{}' in insert into '{}'",
                    key.name, self.name
                ))
            })?;
            if !key.ctype.accepts(&found.1) {
                return Err(DbError::SchemaViolation(format!(
                    "key column '{}' expects {}, got {}",
                    key.name,
                    key.ctype.cql_name(),
                    found.1
                )));
            }
        }
        for (name, value) in values {
            match self.role_of(name) {
                None => {
                    return Err(DbError::SchemaViolation(format!(
                        "unknown column '{}' in table '{}'",
                        name, self.name
                    )))
                }
                Some(KeyRole::Regular) => {
                    let def = self.column(name).expect("role implies presence");
                    if !def.ctype.accepts(value) {
                        return Err(DbError::SchemaViolation(format!(
                            "column '{}' expects {}, got {}",
                            name,
                            def.ctype.cql_name(),
                            value
                        )));
                    }
                }
                Some(_) => {} // keys already checked
            }
        }
        Ok(())
    }

    /// Splits insert values into (partition key, clustering key, regular
    /// cells) in schema order. Call after [`Self::validate_insert`].
    pub fn split_insert(
        &self,
        values: Vec<(String, Value)>,
    ) -> (Vec<Value>, Vec<Value>, Vec<(String, Value)>) {
        let mut pk = Vec::with_capacity(self.partition_key.len());
        let mut ck = Vec::with_capacity(self.clustering_key.len());
        let mut rest = Vec::new();
        let mut pool: Vec<Option<(String, Value)>> = values.into_iter().map(Some).collect();
        for key in &self.partition_key {
            let slot = pool
                .iter_mut()
                .find(|s| s.as_ref().is_some_and(|(n, _)| *n == key.name))
                .expect("validated insert");
            pk.push(slot.take().expect("present").1);
        }
        for key in &self.clustering_key {
            let slot = pool
                .iter_mut()
                .find(|s| s.as_ref().is_some_and(|(n, _)| *n == key.name))
                .expect("validated insert");
            ck.push(slot.take().expect("present").1);
        }
        for slot in pool.into_iter().flatten() {
            rest.push(slot);
        }
        (pk, ck, rest)
    }
}

/// Fluent builder for [`TableSchema`].
pub struct TableSchemaBuilder {
    name: String,
    partition_key: Vec<ColumnDef>,
    clustering_key: Vec<ColumnDef>,
    columns: Vec<ColumnDef>,
}

impl TableSchemaBuilder {
    /// Adds a partition-key column.
    pub fn partition_key(mut self, name: impl Into<String>, ctype: ColumnType) -> Self {
        self.partition_key.push(ColumnDef {
            name: name.into(),
            ctype,
        });
        self
    }

    /// Adds a clustering-key column.
    pub fn clustering_key(mut self, name: impl Into<String>, ctype: ColumnType) -> Self {
        self.clustering_key.push(ColumnDef {
            name: name.into(),
            ctype,
        });
        self
    }

    /// Adds a regular column.
    pub fn column(mut self, name: impl Into<String>, ctype: ColumnType) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            ctype,
        });
        self
    }

    /// Finishes, checking structural invariants.
    pub fn build(self) -> Result<TableSchema, DbError> {
        if self.name.is_empty() {
            return Err(DbError::SchemaViolation("empty table name".into()));
        }
        if self.partition_key.is_empty() {
            return Err(DbError::SchemaViolation(format!(
                "table '{}' needs at least one partition key column",
                self.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in self
            .partition_key
            .iter()
            .chain(&self.clustering_key)
            .chain(&self.columns)
        {
            if !seen.insert(c.name.as_str()) {
                return Err(DbError::SchemaViolation(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, self.name
                )));
            }
        }
        Ok(TableSchema {
            name: self.name,
            partition_key: self.partition_key,
            clustering_key: self.clustering_key,
            columns: self.columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::builder("event_by_time")
            .partition_key("hour", ColumnType::BigInt)
            .partition_key("type", ColumnType::Text)
            .clustering_key("ts", ColumnType::Timestamp)
            .column("source", ColumnType::Text)
            .column("amount", ColumnType::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn roles_are_reported() {
        let s = sample();
        assert_eq!(s.role_of("hour"), Some(KeyRole::Partition));
        assert_eq!(s.role_of("ts"), Some(KeyRole::Clustering));
        assert_eq!(s.role_of("amount"), Some(KeyRole::Regular));
        assert_eq!(s.role_of("nope"), None);
    }

    #[test]
    fn builder_rejects_duplicates_and_keyless_tables() {
        assert!(TableSchema::builder("t")
            .partition_key("a", ColumnType::Int)
            .column("a", ColumnType::Int)
            .build()
            .is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .build()
            .is_err());
        assert!(TableSchema::builder("")
            .partition_key("a", ColumnType::Int)
            .build()
            .is_err());
    }

    #[test]
    fn validate_insert_checks_presence_and_types() {
        let s = sample();
        let ok = vec![
            ("hour".to_owned(), Value::BigInt(1)),
            ("type".to_owned(), Value::text("MCE")),
            ("ts".to_owned(), Value::Timestamp(5)),
            ("amount".to_owned(), Value::Int(2)),
        ];
        assert!(s.validate_insert(&ok).is_ok());

        let missing_key = vec![
            ("hour".to_owned(), Value::BigInt(1)),
            ("ts".to_owned(), Value::Timestamp(5)),
        ];
        assert!(matches!(
            s.validate_insert(&missing_key),
            Err(DbError::SchemaViolation(_))
        ));

        let wrong_type = vec![
            ("hour".to_owned(), Value::text("not a number")),
            ("type".to_owned(), Value::text("MCE")),
            ("ts".to_owned(), Value::Timestamp(5)),
        ];
        assert!(s.validate_insert(&wrong_type).is_err());

        let unknown = vec![
            ("hour".to_owned(), Value::BigInt(1)),
            ("type".to_owned(), Value::text("MCE")),
            ("ts".to_owned(), Value::Timestamp(5)),
            ("bogus".to_owned(), Value::Int(1)),
        ];
        assert!(s.validate_insert(&unknown).is_err());
    }

    #[test]
    fn split_insert_orders_by_schema() {
        let s = sample();
        let values = vec![
            ("amount".to_owned(), Value::Int(2)),
            ("ts".to_owned(), Value::Timestamp(5)),
            ("type".to_owned(), Value::text("MCE")),
            ("hour".to_owned(), Value::BigInt(1)),
        ];
        s.validate_insert(&values).unwrap();
        let (pk, ck, rest) = s.split_insert(values);
        assert_eq!(pk, vec![Value::BigInt(1), Value::text("MCE")]);
        assert_eq!(ck, vec![Value::Timestamp(5)]);
        assert_eq!(rest, vec![("amount".to_owned(), Value::Int(2))]);
    }

    #[test]
    fn type_names_roundtrip() {
        for t in [
            ColumnType::Text,
            ColumnType::Int,
            ColumnType::BigInt,
            ColumnType::Double,
            ColumnType::Bool,
            ColumnType::Timestamp,
            ColumnType::Blob,
            ColumnType::List,
            ColumnType::Map,
        ] {
            assert_eq!(ColumnType::from_cql_name(t.cql_name()), Some(t));
        }
        assert_eq!(ColumnType::from_cql_name("uuid"), None);
    }
}
