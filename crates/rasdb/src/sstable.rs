//! Immutable sorted runs flushed from the memtable.
//!
//! An `SsTable` mirrors the on-disk artifact of an LSM engine: partition
//! data sorted by key, an index for binary search, and a bloom filter that
//! lets reads skip tables that cannot contain the partition. (Data lives in
//! memory here — the cluster is an in-process simulation — but every
//! structural property reads rely on is preserved.)

use crate::bloom::BloomFilter;
use crate::memtable::RowEntry;
use crate::partitioner::murmur3_x64_128;
use crate::types::Key;
use std::ops::Bound;

/// Seed for stream-chunk checksums (distinct from the ring token seed so
/// the two hash domains can never alias).
const STREAM_CHECKSUM_SEED: u64 = 0x0dd_ba11;

/// Canonical byte encoding of one streamed row: clustering key, row
/// tombstone, then every cell (name, write timestamp, value-or-tombstone)
/// in column order. Range streaming checksums chunks of this encoding;
/// both sides of a transfer must produce identical bytes for identical
/// rows, which the deterministic `Value` encoding guarantees.
pub fn encode_stream_row(out: &mut Vec<u8>, clustering: &Key, entry: &RowEntry) {
    let ck = clustering.encode();
    out.extend_from_slice(&(ck.len() as u32).to_le_bytes());
    out.extend_from_slice(&ck);
    match entry.deleted_at {
        None => out.push(0),
        Some(ts) => {
            out.push(1);
            out.extend_from_slice(&ts.to_le_bytes());
        }
    }
    out.extend_from_slice(&(entry.cells.len() as u32).to_le_bytes());
    for (name, cell) in &entry.cells {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&cell.write_ts.to_le_bytes());
        match &cell.value {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

/// Encodes a whole stream chunk — the partition key plus every row in
/// chunk order — into the wire form that [`stream_chunk_checksum`] covers.
pub fn encode_stream_chunk(partition: &Key, rows: &[(Key, RowEntry)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * rows.len().max(1));
    let pk = partition.encode();
    out.extend_from_slice(&(pk.len() as u32).to_le_bytes());
    out.extend_from_slice(&pk);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (ck, entry) in rows {
        encode_stream_row(&mut out, ck, entry);
    }
    out
}

/// Order-sensitive checksum over an encoded stream chunk. The sender
/// computes it before transmission, the receiver recomputes it over the
/// received bytes; any corruption in flight shows up as a mismatch and the
/// chunk is NAKed for retry.
pub fn stream_chunk_checksum(encoded: &[u8]) -> u64 {
    murmur3_x64_128(encoded, STREAM_CHECKSUM_SEED).0
}

/// One immutable sorted run.
#[derive(Debug, Clone)]
pub struct SsTable {
    /// Monotonic flush sequence number (newer tables have larger values).
    pub sequence: u64,
    /// Partitions sorted by partition key.
    data: Vec<(Key, Vec<(Key, RowEntry)>)>,
    bloom: BloomFilter,
    cells: usize,
}

impl SsTable {
    /// Builds a table from sorted flush output.
    pub fn build(sequence: u64, data: Vec<(Key, Vec<(Key, RowEntry)>)>) -> SsTable {
        debug_assert!(
            data.windows(2).all(|w| w[0].0 < w[1].0),
            "flush output must be sorted by partition key"
        );
        let mut bloom = BloomFilter::new(data.len().max(8), 0.01);
        let mut cells = 0;
        for (pk, rows) in &data {
            bloom.insert(&pk.encode());
            cells += rows.iter().map(|(_, e)| e.weight()).sum::<usize>();
        }
        SsTable {
            sequence,
            data,
            bloom,
            cells,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.data.len()
    }

    /// Total stored cells (compaction sizing).
    pub fn cell_count(&self) -> usize {
        self.cells
    }

    /// Bloom-filter check; false means the partition is definitely absent.
    pub fn may_contain(&self, partition: &Key) -> bool {
        self.bloom.may_contain(&partition.encode())
    }

    /// Reads row entries of one partition within a clustering range.
    /// `use_bloom` enables the filter short-circuit (ablation hook).
    pub fn read_raw(
        &self,
        partition: &Key,
        range: &(Bound<Key>, Bound<Key>),
        use_bloom: bool,
    ) -> Vec<(Key, RowEntry)> {
        if use_bloom && !self.may_contain(partition) {
            return Vec::new();
        }
        let idx = match self.data.binary_search_by(|(pk, _)| pk.cmp(partition)) {
            Ok(i) => i,
            Err(_) => return Vec::new(),
        };
        let rows = &self.data[idx].1;
        let start = match &range.0 {
            Bound::Unbounded => 0,
            Bound::Included(k) => rows.partition_point(|(ck, _)| ck < k),
            Bound::Excluded(k) => rows.partition_point(|(ck, _)| ck <= k),
        };
        let end = match &range.1 {
            Bound::Unbounded => rows.len(),
            Bound::Included(k) => rows.partition_point(|(ck, _)| ck <= k),
            Bound::Excluded(k) => rows.partition_point(|(ck, _)| ck < k),
        };
        if start >= end {
            return Vec::new();
        }
        rows[start..end].to_vec()
    }

    /// Iterates all partitions (compaction and token-range scans).
    pub fn partitions(&self) -> impl Iterator<Item = &(Key, Vec<(Key, RowEntry)>)> {
        self.data.iter()
    }

    /// Consumes the table into its partitions.
    pub fn into_partitions(self) -> Vec<(Key, Vec<(Key, RowEntry)>)> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Cell, Value};

    fn pk(h: i64) -> Key {
        Key(vec![Value::BigInt(h)])
    }

    fn ck(ts: i64) -> Key {
        Key(vec![Value::Timestamp(ts)])
    }

    fn entry(v: i32, ts: u64) -> RowEntry {
        let mut e = RowEntry::default();
        e.upsert([("v".to_owned(), Cell::live(Value::Int(v), ts))]);
        e
    }

    fn sample() -> SsTable {
        SsTable::build(
            1,
            vec![
                (pk(1), vec![(ck(1), entry(1, 1)), (ck(3), entry(3, 1))]),
                (pk(2), vec![(ck(2), entry(2, 1))]),
                (
                    pk(5),
                    (0..100).map(|t| (ck(t), entry(t as i32, 1))).collect(),
                ),
            ],
        )
    }

    #[test]
    fn point_lookup_finds_partition() {
        let t = sample();
        assert_eq!(
            t.read_raw(&pk(2), &crate::memtable::full_range(), true)
                .len(),
            1
        );
        assert!(t
            .read_raw(&pk(9), &crate::memtable::full_range(), true)
            .is_empty());
    }

    #[test]
    fn clustering_range_bounds() {
        let t = sample();
        let r = t.read_raw(
            &pk(5),
            &(Bound::Included(ck(10)), Bound::Excluded(ck(20))),
            true,
        );
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, ck(10));
        assert_eq!(r[9].0, ck(19));
        let r = t.read_raw(
            &pk(5),
            &(Bound::Excluded(ck(10)), Bound::Included(ck(20))),
            true,
        );
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, ck(11));
        assert_eq!(r[9].0, ck(20));
    }

    #[test]
    fn empty_range_is_empty() {
        let t = sample();
        let r = t.read_raw(
            &pk(5),
            &(Bound::Included(ck(50)), Bound::Excluded(ck(50))),
            true,
        );
        assert!(r.is_empty());
        let r = t.read_raw(&pk(5), &(Bound::Included(ck(200)), Bound::Unbounded), true);
        assert!(r.is_empty());
    }

    #[test]
    fn bloom_skips_absent_partitions() {
        let t = sample();
        // Present partitions always pass the filter.
        assert!(t.may_contain(&pk(1)));
        assert!(t.may_contain(&pk(5)));
        // Nearly all absent partitions are rejected.
        let rejected = (1000i64..2000).filter(|h| !t.may_contain(&pk(*h))).count();
        assert!(rejected > 900, "rejected {rejected}/1000");
    }

    #[test]
    fn counts_reported() {
        let t = sample();
        assert_eq!(t.partition_count(), 3);
        assert!(t.cell_count() >= 103);
    }

    #[test]
    fn stream_checksum_is_stable_and_order_sensitive() {
        let rows = vec![(ck(1), entry(1, 1)), (ck(2), entry(2, 1))];
        let a = stream_chunk_checksum(&encode_stream_chunk(&pk(1), &rows));
        let b = stream_chunk_checksum(&encode_stream_chunk(&pk(1), &rows));
        assert_eq!(a, b, "identical chunks must checksum identically");
        let swapped = vec![rows[1].clone(), rows[0].clone()];
        assert_ne!(
            a,
            stream_chunk_checksum(&encode_stream_chunk(&pk(1), &swapped)),
            "row order is part of the chunk identity"
        );
        assert_ne!(
            a,
            stream_chunk_checksum(&encode_stream_chunk(&pk(2), &rows)),
            "the partition key is part of the chunk identity"
        );
    }

    #[test]
    fn stream_checksum_detects_any_flipped_byte() {
        let rows = vec![(ck(1), entry(7, 3)), (ck(2), entry(9, 4))];
        let encoded = encode_stream_chunk(&pk(5), &rows);
        let sum = stream_chunk_checksum(&encoded);
        for i in 0..encoded.len() {
            let mut corrupted = encoded.clone();
            corrupted[i] ^= 0xff;
            assert_ne!(
                sum,
                stream_chunk_checksum(&corrupted),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn stream_encoding_distinguishes_tombstones() {
        let live = entry(1, 5);
        let mut dead = RowEntry::default();
        dead.delete(5);
        let a = encode_stream_chunk(&pk(1), &[(ck(1), live)]);
        let b = encode_stream_chunk(&pk(1), &[(ck(1), dead)]);
        assert_ne!(a, b, "a tombstone must encode differently from a live row");
    }
}
