//! Error type shared by the storage and query layers.

use std::fmt;

/// Anything that can go wrong in `rasdb`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Table already exists.
    TableExists(String),
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Statement or mutation does not fit the table schema.
    SchemaViolation(String),
    /// Not enough live replicas acknowledged the operation.
    Unavailable {
        /// Acks required by the consistency level.
        required: usize,
        /// Acks actually received.
        received: usize,
    },
    /// CQL text failed to parse.
    Parse(String),
    /// Malformed query (e.g. partition key not fully specified).
    BadQuery(String),
    /// A topology transition (join/decommission) is already in flight; the
    /// coordinator rejects overlapping admin ops instead of queueing them.
    TopologyChanging {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Range streaming exhausted its retry budget (or lost its quorum of
    /// donors); the transition was rolled back to the pre-change topology.
    StreamAborted(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table '{t}' already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            DbError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            DbError::Unavailable { required, received } => write!(
                f,
                "unavailable: required {required} replica acks, received {received}"
            ),
            DbError::Parse(m) => write!(f, "CQL parse error: {m}"),
            DbError::BadQuery(m) => write!(f, "bad query: {m}"),
            DbError::TopologyChanging { retry_after_ms } => write!(
                f,
                "topology change in flight; retry after {retry_after_ms}ms"
            ),
            DbError::StreamAborted(m) => write!(f, "range streaming aborted: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::Unavailable {
            required: 2,
            received: 1,
        };
        assert!(e.to_string().contains("required 2"));
        assert!(DbError::NoSuchTable("x".into()).to_string().contains("'x'"));
    }
}
