//! Lightweight atomic counters exposed by nodes and the cluster.
//!
//! Each [`NodeStats`] keeps exact per-node counts (used by the bloom-filter
//! ablation and the replication tests), and every increment is mirrored
//! into process-wide `rasdb.storage.*` counters in the global
//! [`telemetry`] registry so storage activity shows up in `metrics` output
//! alongside coordinator latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use telemetry::{Counter, Gauge};

/// Registry-backed counters shared by every node in the process.
struct GlobalStorageCounters {
    writes: Arc<Counter>,
    reads: Arc<Counter>,
    flushes: Arc<Counter>,
    compactions: Arc<Counter>,
    bloom_skips: Arc<Counter>,
    sstable_probes: Arc<Counter>,
}

fn globals() -> &'static GlobalStorageCounters {
    static G: OnceLock<GlobalStorageCounters> = OnceLock::new();
    G.get_or_init(|| {
        let r = telemetry::global();
        GlobalStorageCounters {
            writes: r.counter("rasdb.storage.writes"),
            reads: r.counter("rasdb.storage.reads"),
            flushes: r.counter("rasdb.storage.flushes"),
            compactions: r.counter("rasdb.storage.compactions"),
            bloom_skips: r.counter("rasdb.storage.bloom_skips"),
            sstable_probes: r.counter("rasdb.storage.sstable_probes"),
        }
    })
}

/// Per-node operation counters. All methods are lock-free; relaxed ordering
/// is fine because the counters are monotonic telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct NodeStats {
    writes: AtomicU64,
    reads: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    bloom_skips: AtomicU64,
    sstable_probes: AtomicU64,
}

impl NodeStats {
    /// Records a write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        globals().writes.incr(1);
    }

    /// Records a read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        globals().reads.incr(1);
    }

    /// Records a memtable flush.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        globals().flushes.incr(1);
    }

    /// Records a compaction.
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        globals().compactions.incr(1);
    }

    /// Records an SSTable skipped thanks to its bloom filter.
    pub fn record_bloom_skip(&self) {
        self.bloom_skips.fetch_add(1, Ordering::Relaxed);
        globals().bloom_skips.incr(1);
    }

    /// Records an SSTable actually probed.
    pub fn record_sstable_probe(&self) {
        self.sstable_probes.fetch_add(1, Ordering::Relaxed);
        globals().sstable_probes.incr(1);
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            bloom_skips: self.bloom_skips.load(Ordering::Relaxed),
            sstable_probes: self.sstable_probes.load(Ordering::Relaxed),
        }
    }
}

/// Coordinator-side read-path counters: replica selection and the
/// scatter-gather machinery. Per-cluster counts are exact; every increment
/// is mirrored into `rasdb.coordinator.*` counters in the global registry.
#[derive(Debug, Default)]
pub struct CoordinatorStats {
    replica_skipped: AtomicU64,
    speculative_retries: AtomicU64,
    read_multi_batches: AtomicU64,
    read_multi_plans: AtomicU64,
    hints_dropped: AtomicU64,
    hints_rerouted: AtomicU64,
}

impl CoordinatorStats {
    /// Records a known-down replica skipped before dispatch.
    pub fn record_replica_skipped(&self) {
        self.replica_skipped.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.coordinator.replica_skipped")
            .incr(1);
    }

    /// Records a speculative retry against the next replica (deadline hit
    /// or a replica answered "down" mid-read).
    pub fn record_speculative_retry(&self) {
        self.speculative_retries.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.coordinator.speculative_retries")
            .incr(1);
    }

    /// Records one `read_multi` batch of `plans` partition reads.
    pub fn record_read_multi(&self, plans: u64) {
        self.read_multi_batches.fetch_add(1, Ordering::Relaxed);
        self.read_multi_plans.fetch_add(plans, Ordering::Relaxed);
        let r = telemetry::global();
        r.counter("rasdb.coordinator.read_multi.batches").incr(1);
        r.counter("rasdb.coordinator.read_multi.plans").incr(plans);
        r.gauge("rasdb.coordinator.read_multi.fanout")
            .set(plans as i64);
    }

    /// Records a hinted-handoff mutation evicted because the target node's
    /// hint queue hit its cap (the node must rely on read repair for it).
    pub fn record_hint_dropped(&self) {
        self.hints_dropped.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.coordinator.hints_dropped")
            .incr(1);
    }

    /// Down replicas skipped before dispatch.
    pub fn replica_skipped(&self) -> u64 {
        self.replica_skipped.load(Ordering::Relaxed)
    }

    /// Speculative retries issued.
    pub fn speculative_retries(&self) -> u64 {
        self.speculative_retries.load(Ordering::Relaxed)
    }

    /// `read_multi` batches executed.
    pub fn read_multi_batches(&self) -> u64 {
        self.read_multi_batches.load(Ordering::Relaxed)
    }

    /// Total plans fanned out across all batches.
    pub fn read_multi_plans(&self) -> u64 {
        self.read_multi_plans.load(Ordering::Relaxed)
    }

    /// Records a hinted-handoff mutation re-applied to a partition's new
    /// owner because its original target was decommissioned (or aborted
    /// out of a join) — the hint would otherwise wait on a node that will
    /// never come back.
    pub fn record_hint_rerouted(&self) {
        self.hints_rerouted.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.coordinator.hints_rerouted")
            .incr(1);
    }

    /// Hints evicted by the hint-queue cap.
    pub fn hints_dropped(&self) -> u64 {
        self.hints_dropped.load(Ordering::Relaxed)
    }

    /// Hints re-applied to new owners during a topology commit.
    pub fn hints_rerouted(&self) -> u64 {
        self.hints_rerouted.load(Ordering::Relaxed)
    }
}

/// Topology-transition counters: range streaming progress and the fault
/// recovery machinery (retries, resumes, aborts). Per-cluster counts are
/// exact; every increment is mirrored into `rasdb.topology.*` counters in
/// the global registry so rebalances show up in `metrics` output next to
/// coordinator and storage activity.
#[derive(Debug, Default)]
pub struct TopologyStats {
    joins: AtomicU64,
    decommissions: AtomicU64,
    aborts: AtomicU64,
    chunks_streamed: AtomicU64,
    rows_streamed: AtomicU64,
    chunk_retries: AtomicU64,
    stream_resumes: AtomicU64,
}

impl TopologyStats {
    /// Records a committed join.
    pub fn record_join(&self) {
        self.joins.fetch_add(1, Ordering::Relaxed);
        telemetry::global().counter("rasdb.topology.joins").incr(1);
    }

    /// Records a committed decommission.
    pub fn record_decommission(&self) {
        self.decommissions.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.topology.decommissions")
            .incr(1);
    }

    /// Records a transition rolled back to the pre-change topology.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
        telemetry::global().counter("rasdb.topology.aborts").incr(1);
    }

    /// Records one acked stream chunk carrying `rows` rows.
    pub fn record_chunk(&self, rows: u64) {
        self.chunks_streamed.fetch_add(1, Ordering::Relaxed);
        self.rows_streamed.fetch_add(rows, Ordering::Relaxed);
        let r = telemetry::global();
        r.counter("rasdb.topology.chunks_streamed").incr(1);
        r.counter("rasdb.topology.rows_streamed").incr(rows);
    }

    /// Records a chunk attempt retried after a drop or checksum mismatch.
    pub fn record_chunk_retry(&self) {
        self.chunk_retries.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.topology.chunk_retries")
            .incr(1);
    }

    /// Records a stream resumed from its last acked chunk after a donor or
    /// receiver crash.
    pub fn record_stream_resume(&self) {
        self.stream_resumes.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("rasdb.topology.stream_resumes")
            .incr(1);
    }

    /// Committed joins.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// Committed decommissions.
    pub fn decommissions(&self) -> u64 {
        self.decommissions.load(Ordering::Relaxed)
    }

    /// Transitions rolled back.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Stream chunks acked.
    pub fn chunks_streamed(&self) -> u64 {
        self.chunks_streamed.load(Ordering::Relaxed)
    }

    /// Rows delivered over range streams.
    pub fn rows_streamed(&self) -> u64 {
        self.rows_streamed.load(Ordering::Relaxed)
    }

    /// Chunk attempts retried.
    pub fn chunk_retries(&self) -> u64 {
        self.chunk_retries.load(Ordering::Relaxed)
    }

    /// Streams resumed after crashes.
    pub fn stream_resumes(&self) -> u64 {
        self.stream_resumes.load(Ordering::Relaxed)
    }
}

/// Hit/miss/evict/invalidate counters for one cache tier.
///
/// Local counts are exact; every increment is mirrored into
/// `cache.<tier>.{hit,miss,evict,invalidate}` counters in the global
/// registry, and each hit or miss refreshes a `cache.<tier>.hit_ratio_pct`
/// gauge so `/metrics` shows cache effectiveness directly.
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    hit_counter: Arc<Counter>,
    miss_counter: Arc<Counter>,
    evict_counter: Arc<Counter>,
    invalidate_counter: Arc<Counter>,
    ratio_gauge: Arc<Gauge>,
}

impl CacheStats {
    /// Creates counters for a named cache tier (e.g. `"block"`, `"result"`).
    pub fn new(tier: &str) -> CacheStats {
        let r = telemetry::global();
        CacheStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            hit_counter: r.counter(&format!("cache.{tier}.hit")),
            miss_counter: r.counter(&format!("cache.{tier}.miss")),
            evict_counter: r.counter(&format!("cache.{tier}.evict")),
            invalidate_counter: r.counter(&format!("cache.{tier}.invalidate")),
            ratio_gauge: r.gauge(&format!("cache.{tier}.hit_ratio_pct")),
        }
    }

    fn refresh_ratio(&self) {
        let hits = self.hits.load(Ordering::Relaxed);
        let total = hits + self.misses.load(Ordering::Relaxed);
        if let Some(pct) = (hits * 100).checked_div(total) {
            self.ratio_gauge.set(pct as i64);
        }
    }

    /// Records a lookup served from cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hit_counter.incr(1);
        self.refresh_ratio();
    }

    /// Records a lookup that had to fall through to the backing store.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.miss_counter.incr(1);
        self.refresh_ratio();
    }

    /// Records `n` entries evicted under byte-budget pressure.
    pub fn record_evictions(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.evictions.fetch_add(n, Ordering::Relaxed);
        self.evict_counter.incr(n);
    }

    /// Records `n` entries dropped because their data version, topology
    /// epoch, or watermark tag went stale.
    pub fn record_invalidations(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.invalidations.fetch_add(n, Ordering::Relaxed);
        self.invalidate_counter.incr(n);
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries invalidated by staleness.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStats")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .field("invalidations", &self.invalidations())
            .finish()
    }
}

/// A point-in-time copy of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Mutations applied.
    pub writes: u64,
    /// Partition reads served.
    pub reads: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// SSTables skipped by bloom filters.
    pub bloom_skips: u64,
    /// SSTables probed during reads.
    pub sstable_probes: u64,
}

impl StatsSnapshot {
    /// Element-wise sum, for cluster-level aggregation.
    pub fn add(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes + other.writes,
            reads: self.reads + other.reads,
            flushes: self.flushes + other.flushes,
            compactions: self.compactions + other.compactions,
            bloom_skips: self.bloom_skips + other.bloom_skips,
            sstable_probes: self.sstable_probes + other.sstable_probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NodeStats::default();
        s.record_write();
        s.record_write();
        s.record_read();
        s.record_flush();
        let snap = s.snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.compactions, 0);
    }

    #[test]
    fn snapshots_add() {
        let a = StatsSnapshot {
            writes: 1,
            reads: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            writes: 10,
            bloom_skips: 5,
            ..Default::default()
        };
        let c = a.add(&b);
        assert_eq!(c.writes, 11);
        assert_eq!(c.reads, 2);
        assert_eq!(c.bloom_skips, 5);
    }
}
