//! Cell values, keys, and rows.

use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A typed cell value.
///
/// `Value` has a *total* order (doubles compare with `total_cmp`) so that it
/// can serve directly as a clustering-key component inside sorted
/// structures.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 text.
    Text(String),
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    BigInt(i64),
    /// 64-bit float (totally ordered via `total_cmp`).
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
    /// Raw bytes.
    Blob(Bytes),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Returns the text if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer widened to `i64` for `Int`, `BigInt`, and
    /// `Timestamp` values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float for `Double` (or widened integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => self.as_i64().map(|v| v as f64),
        }
    }

    /// A discriminant used for cross-type ordering and encoding.
    fn tag(&self) -> u8 {
        match self {
            Value::Text(_) => 0,
            Value::Int(_) => 1,
            Value::BigInt(_) => 2,
            Value::Double(_) => 3,
            Value::Bool(_) => 4,
            Value::Timestamp(_) => 5,
            Value::Blob(_) => 6,
            Value::List(_) => 7,
            Value::Map(_) => 8,
        }
    }

    /// Appends a self-delimiting binary encoding of this value; used for
    /// partition-key hashing and commit-log serialization.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Value::Text(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Int(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::BigInt(v) | Value::Timestamp(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Double(v) => out.extend_from_slice(&v.to_bits().to_le_bytes()),
            Value::Bool(v) => out.push(*v as u8),
            Value::Blob(b) => {
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::List(items) => {
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            Value::Map(map) => {
                out.extend_from_slice(&(map.len() as u32).to_le_bytes());
                for (k, v) in map {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.encode_into(out);
                }
            }
        }
    }
}

impl Value {
    /// Decodes one value from the front of `bytes`, returning it and the
    /// remaining slice. Inverse of [`Value::encode_into`].
    pub fn decode(bytes: &[u8]) -> Option<(Value, &[u8])> {
        let (&tag, rest) = bytes.split_first()?;
        fn take<const N: usize>(b: &[u8]) -> Option<([u8; N], &[u8])> {
            if b.len() < N {
                return None;
            }
            Some((b[..N].try_into().ok()?, &b[N..]))
        }
        fn take_len(b: &[u8]) -> Option<(usize, &[u8])> {
            let (raw, rest) = take::<4>(b)?;
            Some((u32::from_le_bytes(raw) as usize, rest))
        }
        Some(match tag {
            0 => {
                let (len, rest) = take_len(rest)?;
                if rest.len() < len {
                    return None;
                }
                let s = std::str::from_utf8(&rest[..len]).ok()?;
                (Value::Text(s.to_owned()), &rest[len..])
            }
            1 => {
                let (raw, rest) = take::<4>(rest)?;
                (Value::Int(i32::from_le_bytes(raw)), rest)
            }
            2 => {
                let (raw, rest) = take::<8>(rest)?;
                (Value::BigInt(i64::from_le_bytes(raw)), rest)
            }
            3 => {
                let (raw, rest) = take::<8>(rest)?;
                (Value::Double(f64::from_bits(u64::from_le_bytes(raw))), rest)
            }
            4 => {
                let (&b, rest) = rest.split_first()?;
                (Value::Bool(b != 0), rest)
            }
            5 => {
                let (raw, rest) = take::<8>(rest)?;
                (Value::Timestamp(i64::from_le_bytes(raw)), rest)
            }
            6 => {
                let (len, rest) = take_len(rest)?;
                if rest.len() < len {
                    return None;
                }
                (
                    Value::Blob(Bytes::copy_from_slice(&rest[..len])),
                    &rest[len..],
                )
            }
            7 => {
                let (len, mut rest) = take_len(rest)?;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let (v, r) = Value::decode(rest)?;
                    items.push(v);
                    rest = r;
                }
                (Value::List(items), rest)
            }
            8 => {
                let (len, mut rest) = take_len(rest)?;
                let mut map = BTreeMap::new();
                for _ in 0..len {
                    let (klen, r) = take_len(rest)?;
                    if r.len() < klen {
                        return None;
                    }
                    let key = std::str::from_utf8(&r[..klen]).ok()?.to_owned();
                    let (v, r2) = Value::decode(&r[klen..])?;
                    map.insert(key, v);
                    rest = r2;
                }
                (Value::Map(map), rest)
            }
            _ => return None,
        })
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (BigInt(a), BigInt(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut buf = Vec::with_capacity(16);
        self.encode_into(&mut buf);
        buf.hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "ts:{v}"),
            Value::Blob(b) => write!(f, "0x{}", hex(b)),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{k}': {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// A composite key: the ordered components of a partition or clustering key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// Binary encoding used for token hashing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() * 12);
        for v in &self.0 {
            v.encode_into(&mut out);
        }
        out
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Key {
    fn from(v: Vec<Value>) -> Key {
        Key(v)
    }
}

/// One cell: a value plus its write timestamp for last-write-wins merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// `None` encodes a tombstone (deleted cell).
    pub value: Option<Value>,
    /// Logical write timestamp assigned by the coordinator.
    pub write_ts: u64,
}

impl Cell {
    /// A live cell.
    pub fn live(value: Value, write_ts: u64) -> Cell {
        Cell {
            value: Some(value),
            write_ts,
        }
    }

    /// A tombstone.
    pub fn tombstone(write_ts: u64) -> Cell {
        Cell {
            value: None,
            write_ts,
        }
    }

    /// Last-write-wins merge; ties resolve toward the tombstone, then the
    /// larger value, so merging is commutative.
    pub fn merge(a: &Cell, b: &Cell) -> Cell {
        match a.write_ts.cmp(&b.write_ts) {
            Ordering::Greater => a.clone(),
            Ordering::Less => b.clone(),
            Ordering::Equal => match (&a.value, &b.value) {
                (None, _) => a.clone(),
                (_, None) => b.clone(),
                (Some(x), Some(y)) => {
                    if x >= y {
                        a.clone()
                    } else {
                        b.clone()
                    }
                }
            },
        }
    }
}

/// A materialized row returned by reads: clustering key plus named cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Clustering-key components.
    pub clustering: Key,
    /// Live cells by column name.
    pub cells: BTreeMap<String, Value>,
}

impl Row {
    /// Looks up a cell by column name.
    pub fn cell(&self, column: &str) -> Option<&Value> {
        self.cells.get(column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_accessors() {
        let v = Value::text("hi");
        assert_eq!(v.as_text(), Some("hi"));
        assert_eq!(v.as_i64(), None);
        assert_eq!(Value::Int(5).as_i64(), Some(5));
        assert_eq!(Value::Timestamp(9).as_i64(), Some(9));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
    }

    #[test]
    fn ordering_is_total_even_for_nan() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(1.0);
        // total_cmp puts NaN above all numbers; the point is it doesn't panic
        // and is consistent.
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(b.cmp(&a), Ordering::Less);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn cross_type_ordering_by_tag() {
        assert!(Value::text("z") < Value::Int(0));
        assert!(Value::Int(0) < Value::BigInt(0));
    }

    #[test]
    fn encoding_is_injective_for_adjacent_strings() {
        // ("ab","c") must not collide with ("a","bc").
        let k1 = Key(vec![Value::text("ab"), Value::text("c")]);
        let k2 = Key(vec![Value::text("a"), Value::text("bc")]);
        assert_ne!(k1.encode(), k2.encode());
    }

    #[test]
    fn cell_merge_lww() {
        let old = Cell::live(Value::Int(1), 1);
        let new = Cell::live(Value::Int(2), 2);
        assert_eq!(Cell::merge(&old, &new).value, Some(Value::Int(2)));
        assert_eq!(Cell::merge(&new, &old).value, Some(Value::Int(2)));
    }

    #[test]
    fn cell_merge_tie_prefers_tombstone_and_is_commutative() {
        let live = Cell::live(Value::Int(1), 5);
        let dead = Cell::tombstone(5);
        assert_eq!(Cell::merge(&live, &dead).value, None);
        assert_eq!(Cell::merge(&dead, &live).value, None);
        let a = Cell::live(Value::Int(1), 5);
        let b = Cell::live(Value::Int(2), 5);
        assert_eq!(Cell::merge(&a, &b), Cell::merge(&b, &a));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::text("x").to_string(), "'x'");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        let k = Key(vec![Value::BigInt(7), Value::text("MCE")]);
        assert_eq!(k.to_string(), "(7, 'MCE')");
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), Value::Bool(false));
        let values = vec![
            Value::text("hello"),
            Value::Int(-5),
            Value::BigInt(i64::MAX),
            Value::Double(2.5),
            Value::Bool(true),
            Value::Timestamp(1_500_000_000_000),
            Value::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Value::List(vec![Value::Int(1), Value::text("x")]),
            Value::Map(m),
        ];
        for v in values {
            let mut buf = Vec::new();
            v.encode_into(&mut buf);
            buf.extend_from_slice(b"trailer");
            let (back, rest) = Value::decode(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(rest, b"trailer");
        }
    }

    #[test]
    fn decode_rejects_truncated_and_garbage() {
        let mut buf = Vec::new();
        Value::text("hello").encode_into(&mut buf);
        assert!(Value::decode(&buf[..3]).is_none());
        assert!(Value::decode(&[]).is_none());
        assert!(Value::decode(&[99, 1, 2]).is_none());
    }

    #[test]
    fn map_and_blob_roundtrip_in_encoding() {
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), Value::Bool(true));
        let v = Value::Map(m);
        let mut b1 = Vec::new();
        v.encode_into(&mut b1);
        let mut b2 = Vec::new();
        v.clone().encode_into(&mut b2);
        assert_eq!(b1, b2);
        assert!(!b1.is_empty());
    }
}
