//! Property tests: delivery guarantees of the bus under arbitrary
//! publish/consume interleavings.

use logbus::{Broker, Consumer, Producer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_record_is_delivered_exactly_once_per_group(
        messages in prop::collection::vec(("k[0-9]{1,2}", "[a-z]{1,12}"), 1..120),
        partitions in 1usize..8,
        members in 1usize..4,
        poll_size in 1usize..40,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", partitions).unwrap();
        let producer = Producer::new(&broker);
        for (key, value) in &messages {
            producer.send("t", Some(key), value.clone()).unwrap();
        }
        let mut consumers: Vec<Consumer> = (0..members)
            .map(|_| Consumer::new(&broker, "g", "t").unwrap())
            .collect();
        let mut seen: Vec<(usize, u64, String)> = Vec::new();
        loop {
            let mut progressed = false;
            for c in &mut consumers {
                for rec in c.poll(poll_size) {
                    seen.push((rec.partition, rec.offset, rec.value));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        prop_assert_eq!(seen.len(), messages.len());
        // No duplicates.
        let mut ids: Vec<(usize, u64)> = seen.iter().map(|(p, o, _)| (*p, *o)).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), messages.len());
        // Same multiset of payloads.
        let mut got: Vec<&str> = seen.iter().map(|(_, _, v)| v.as_str()).collect();
        let mut want: Vec<&str> = messages.iter().map(|(_, v)| v.as_str()).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn per_key_order_is_preserved(
        per_key in prop::collection::vec(0usize..5, 1..60),
        partitions in 1usize..6,
    ) {
        // Publish sequence numbers per key; consumption must see each key's
        // numbers in order.
        let broker = Broker::new();
        broker.create_topic("t", partitions).unwrap();
        let producer = Producer::new(&broker);
        let mut counters = [0u32; 5];
        for k in &per_key {
            let key = format!("key{k}");
            producer.send("t", Some(&key), counters[*k].to_string()).unwrap();
            counters[*k] += 1;
        }
        let mut consumer = Consumer::new(&broker, "g", "t").unwrap();
        let mut last: std::collections::HashMap<String, i64> = Default::default();
        // Per-partition order is guaranteed; same key -> same partition.
        let mut records = consumer.poll(10_000);
        records.sort_by_key(|r| (r.partition, r.offset));
        for rec in records {
            let key = rec.key.clone().unwrap();
            let seq: i64 = rec.value.parse().unwrap();
            let prev = last.insert(key.clone(), seq).unwrap_or(-1);
            prop_assert!(seq > prev, "key {} went {} -> {}", key, prev, seq);
        }
    }

    #[test]
    fn committed_offsets_resume_correctly(
        total in 1usize..80,
        consumed_first in 0usize..80,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", 3).unwrap();
        let producer = Producer::new(&broker);
        for i in 0..total {
            producer.send("t", None, i.to_string()).unwrap();
        }
        let first_batch;
        {
            let mut c = Consumer::new(&broker, "g", "t").unwrap();
            first_batch = c.poll(consumed_first).len();
            c.commit().unwrap();
        }
        let mut c = Consumer::new(&broker, "g", "t").unwrap();
        let rest = c.poll(10_000).len();
        prop_assert_eq!(first_batch + rest, total);
    }
}
