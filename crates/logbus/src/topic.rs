//! Topics: named sets of append-only partition logs with bounded retention.
//!
//! Retention doubles as capacity: a partition never holds more than
//! `retention` records. Eviction of the oldest record is gated by the
//! *commit floor* — the lowest offset any registered consumer group has
//! committed for that partition. A full partition whose floor pins the
//! head rejects appends instead of silently dropping unread data; the
//! producer surfaces that as [`crate::BusError::Full`] backpressure.

use crate::broker::GroupState;
use crate::record::Record;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-partition retention (records). Old records are trimmed once
/// every registered group has committed past them, and their offsets remain
/// valid-but-gone (reads clamp forward), matching log-retention semantics.
pub const DEFAULT_RETENTION: usize = 1_000_000;

/// One append-only partition log.
#[derive(Debug)]
pub struct PartitionLog {
    inner: RwLock<LogInner>,
    retention: usize,
    /// Lowest committed offset across registered consumer groups; eviction
    /// never trims at or past this. `u64::MAX` means "unconstrained" (no
    /// group has registered for the topic).
    commit_floor: AtomicU64,
}

#[derive(Debug, Default)]
struct LogInner {
    records: std::collections::VecDeque<Record>,
    /// Offset of `records[0]`.
    base_offset: u64,
    /// Next offset to assign.
    next_offset: u64,
}

impl PartitionLog {
    /// Creates an empty log.
    pub fn new(retention: usize) -> PartitionLog {
        PartitionLog {
            inner: RwLock::new(LogInner::default()),
            retention: retention.max(1),
            commit_floor: AtomicU64::new(u64::MAX),
        }
    }

    /// Appends a record; returns its offset, or `None` when the partition
    /// is at capacity and the commit floor forbids evicting the head (the
    /// producer maps this to [`crate::BusError::Full`]).
    pub fn try_append(&self, mut record: Record, partition: usize) -> Option<u64> {
        let mut inner = self.inner.write();
        if inner.records.len() >= self.retention {
            // Evict the head only if every registered group has committed
            // past it; otherwise reject and let backpressure do its job.
            if inner.base_offset < self.commit_floor.load(Ordering::Acquire) {
                inner.records.pop_front();
                inner.base_offset += 1;
            } else {
                return None;
            }
        }
        let offset = inner.next_offset;
        record.offset = offset;
        record.partition = partition;
        inner.records.push_back(record);
        inner.next_offset += 1;
        Some(offset)
    }

    /// Reads up to `max` records starting at `offset` (clamped forward to
    /// the earliest retained record).
    pub fn read(&self, offset: u64, max: usize) -> Vec<Record> {
        self.read_until(offset, max, u64::MAX)
    }

    /// Like [`PartitionLog::read`] but never returns records at or past
    /// `end_cap` (used by delay fault-injection to hold back a suffix).
    pub fn read_until(&self, offset: u64, max: usize, end_cap: u64) -> Vec<Record> {
        let inner = self.inner.read();
        let start = offset.max(inner.base_offset);
        let end = inner.next_offset.min(end_cap);
        if start >= end {
            return Vec::new();
        }
        let idx = (start - inner.base_offset) as usize;
        let avail = (end - start) as usize;
        inner
            .records
            .iter()
            .skip(idx)
            .take(max.min(avail))
            .cloned()
            .collect()
    }

    /// The next offset that will be assigned (= log end).
    pub fn end_offset(&self) -> u64 {
        self.inner.read().next_offset
    }

    /// The earliest retained offset.
    pub fn begin_offset(&self) -> u64 {
        self.inner.read().base_offset
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current commit floor (`u64::MAX` when unconstrained).
    pub fn commit_floor(&self) -> u64 {
        self.commit_floor.load(Ordering::Acquire)
    }

    fn set_commit_floor(&self, floor: u64) {
        self.commit_floor.store(floor, Ordering::Release);
    }
}

/// A named topic.
#[derive(Debug)]
pub struct Topic {
    /// Topic name.
    pub name: String,
    /// The partition logs.
    pub partitions: Vec<PartitionLog>,
    /// Consumer-group states registered against this topic; their committed
    /// offsets bound retention eviction.
    groups: RwLock<Vec<Arc<RwLock<GroupState>>>>,
}

impl Topic {
    /// Creates a topic with `partitions` logs.
    pub fn new(name: impl Into<String>, partitions: usize, retention: usize) -> Topic {
        Topic {
            name: name.into(),
            partitions: (0..partitions.max(1))
                .map(|_| PartitionLog::new(retention))
                .collect(),
            groups: RwLock::new(Vec::new()),
        }
    }

    /// Deterministic partition for a key (keyless records round-robin at
    /// the producer instead).
    pub fn partition_for_key(&self, key: &str) -> usize {
        // FNV-1a over the key bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.partitions.len() as u64) as usize
    }

    /// Total records currently retained across partitions.
    pub fn total_len(&self) -> usize {
        self.partitions.iter().map(PartitionLog::len).sum()
    }

    pub(crate) fn register_group(&self, group: Arc<RwLock<GroupState>>) {
        self.groups.write().push(group);
        self.refresh_commit_floors();
    }

    /// Recomputes each partition's commit floor from the registered groups.
    /// Called after commits and group registration; caller must not hold
    /// any group lock.
    pub(crate) fn refresh_commit_floors(&self) {
        let groups = self.groups.read();
        for (p, log) in self.partitions.iter().enumerate() {
            let floor = groups
                .iter()
                .filter_map(|g| g.read().committed.get(p).copied())
                .min()
                .unwrap_or(u64::MAX);
            log.set_commit_floor(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: &str) -> Record {
        Record::new(None, v, 0)
    }

    #[test]
    fn offsets_are_dense_and_monotonic() {
        let log = PartitionLog::new(100);
        for i in 0..10 {
            assert_eq!(log.try_append(rec(&i.to_string()), 0), Some(i));
        }
        assert_eq!(log.end_offset(), 10);
        assert_eq!(log.begin_offset(), 0);
    }

    #[test]
    fn read_from_offset() {
        let log = PartitionLog::new(100);
        for i in 0..10 {
            log.try_append(rec(&i.to_string()), 3);
        }
        let r = log.read(4, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].offset, 4);
        assert_eq!(r[0].partition, 3);
        assert_eq!(r[2].value, "6");
        assert!(log.read(10, 5).is_empty());
        assert!(log.read(99, 5).is_empty());
    }

    #[test]
    fn read_until_holds_back_suffix() {
        let log = PartitionLog::new(100);
        for i in 0..10 {
            log.try_append(rec(&i.to_string()), 0);
        }
        let r = log.read_until(0, 100, 6);
        assert_eq!(r.len(), 6);
        assert_eq!(r.last().unwrap().offset, 5);
        assert!(log.read_until(6, 100, 6).is_empty());
    }

    #[test]
    fn retention_trims_and_reads_clamp() {
        let log = PartitionLog::new(5);
        for i in 0..12 {
            log.try_append(rec(&i.to_string()), 0).unwrap();
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.begin_offset(), 7);
        // A stale offset reads from the earliest retained record.
        let r = log.read(0, 10);
        assert_eq!(r[0].value, "7");
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn commit_floor_blocks_eviction() {
        let log = PartitionLog::new(4);
        log.set_commit_floor(0); // a group sits at offset 0
        for i in 0..4 {
            assert!(log.try_append(rec(&i.to_string()), 0).is_some());
        }
        // Full and the head is uncommitted: reject.
        assert_eq!(log.try_append(rec("x"), 0), None);
        // Group commits through 2: two evictions become legal.
        log.set_commit_floor(2);
        assert!(log.try_append(rec("4"), 0).is_some());
        assert!(log.try_append(rec("5"), 0).is_some());
        assert_eq!(log.try_append(rec("6"), 0), None);
        assert_eq!(log.begin_offset(), 2);
    }

    #[test]
    fn same_key_same_partition() {
        let topic = Topic::new("t", 8, 100);
        let p1 = topic.partition_for_key("c0-0c0s0n0");
        for _ in 0..10 {
            assert_eq!(topic.partition_for_key("c0-0c0s0n0"), p1);
        }
        // Different keys spread at least somewhat.
        let distinct: std::collections::HashSet<usize> = (0..100)
            .map(|i| topic.partition_for_key(&format!("c{i}-0c0s0n0")))
            .collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn topic_enforces_min_one_partition() {
        let topic = Topic::new("t", 0, 10);
        assert_eq!(topic.partitions.len(), 1);
    }
}
