//! Topics: named sets of append-only partition logs with bounded retention.

use crate::record::Record;
use parking_lot::RwLock;

/// Default per-partition retention (records). Old records are trimmed, and
/// their offsets remain valid-but-gone (reads clamp forward), matching
/// log-retention semantics.
pub const DEFAULT_RETENTION: usize = 1_000_000;

/// One append-only partition log.
#[derive(Debug)]
pub struct PartitionLog {
    inner: RwLock<LogInner>,
    retention: usize,
}

#[derive(Debug, Default)]
struct LogInner {
    records: std::collections::VecDeque<Record>,
    /// Offset of `records[0]`.
    base_offset: u64,
    /// Next offset to assign.
    next_offset: u64,
}

impl PartitionLog {
    /// Creates an empty log.
    pub fn new(retention: usize) -> PartitionLog {
        PartitionLog {
            inner: RwLock::new(LogInner::default()),
            retention: retention.max(1),
        }
    }

    /// Appends a record; returns its offset.
    pub fn append(&self, mut record: Record, partition: usize) -> u64 {
        let mut inner = self.inner.write();
        let offset = inner.next_offset;
        record.offset = offset;
        record.partition = partition;
        inner.records.push_back(record);
        inner.next_offset += 1;
        if inner.records.len() > self.retention {
            inner.records.pop_front();
            inner.base_offset += 1;
        }
        offset
    }

    /// Reads up to `max` records starting at `offset` (clamped forward to
    /// the earliest retained record).
    pub fn read(&self, offset: u64, max: usize) -> Vec<Record> {
        let inner = self.inner.read();
        let start = offset.max(inner.base_offset);
        if start >= inner.next_offset {
            return Vec::new();
        }
        let idx = (start - inner.base_offset) as usize;
        inner.records.iter().skip(idx).take(max).cloned().collect()
    }

    /// The next offset that will be assigned (= log end).
    pub fn end_offset(&self) -> u64 {
        self.inner.read().next_offset
    }

    /// The earliest retained offset.
    pub fn begin_offset(&self) -> u64 {
        self.inner.read().base_offset
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named topic.
#[derive(Debug)]
pub struct Topic {
    /// Topic name.
    pub name: String,
    /// The partition logs.
    pub partitions: Vec<PartitionLog>,
}

impl Topic {
    /// Creates a topic with `partitions` logs.
    pub fn new(name: impl Into<String>, partitions: usize, retention: usize) -> Topic {
        Topic {
            name: name.into(),
            partitions: (0..partitions.max(1))
                .map(|_| PartitionLog::new(retention))
                .collect(),
        }
    }

    /// Deterministic partition for a key (keyless records round-robin at
    /// the producer instead).
    pub fn partition_for_key(&self, key: &str) -> usize {
        // FNV-1a over the key bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.partitions.len() as u64) as usize
    }

    /// Total records currently retained across partitions.
    pub fn total_len(&self) -> usize {
        self.partitions.iter().map(PartitionLog::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: &str) -> Record {
        Record::new(None, v, 0)
    }

    #[test]
    fn offsets_are_dense_and_monotonic() {
        let log = PartitionLog::new(100);
        for i in 0..10 {
            assert_eq!(log.append(rec(&i.to_string()), 0), i);
        }
        assert_eq!(log.end_offset(), 10);
        assert_eq!(log.begin_offset(), 0);
    }

    #[test]
    fn read_from_offset() {
        let log = PartitionLog::new(100);
        for i in 0..10 {
            log.append(rec(&i.to_string()), 3);
        }
        let r = log.read(4, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].offset, 4);
        assert_eq!(r[0].partition, 3);
        assert_eq!(r[2].value, "6");
        assert!(log.read(10, 5).is_empty());
        assert!(log.read(99, 5).is_empty());
    }

    #[test]
    fn retention_trims_and_reads_clamp() {
        let log = PartitionLog::new(5);
        for i in 0..12 {
            log.append(rec(&i.to_string()), 0);
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.begin_offset(), 7);
        // A stale offset reads from the earliest retained record.
        let r = log.read(0, 10);
        assert_eq!(r[0].value, "7");
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn same_key_same_partition() {
        let topic = Topic::new("t", 8, 100);
        let p1 = topic.partition_for_key("c0-0c0s0n0");
        for _ in 0..10 {
            assert_eq!(topic.partition_for_key("c0-0c0s0n0"), p1);
        }
        // Different keys spread at least somewhat.
        let distinct: std::collections::HashSet<usize> = (0..100)
            .map(|i| topic.partition_for_key(&format!("c{i}-0c0s0n0")))
            .collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn topic_enforces_min_one_partition() {
        let topic = Topic::new("t", 0, 10);
        assert_eq!(topic.partitions.len(), 1);
    }
}
