//! The broker: topic registry, consumer-group coordination, and the
//! fault-injection hook used to exercise real failure schedules in tests.

use crate::topic::{Topic, DEFAULT_RETENTION};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Topic already exists.
    TopicExists(String),
    /// Topic does not exist.
    NoSuchTopic(String),
    /// The target partition is at capacity and its head is pinned by a
    /// consumer group's committed offset; the producer should back off and
    /// retry after roughly `retry_after_ms`.
    Full {
        /// Topic that rejected the append.
        topic: String,
        /// Suggested producer backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The operation was failed deliberately by the active [`FaultPlan`]
    /// (the string names the injected fault, e.g. `"drop"`).
    Injected(&'static str),
    /// An offset commit was failed deliberately by the active
    /// [`FaultPlan`]; the consumer's in-memory positions are untouched and
    /// the commit can simply be retried.
    CommitFailed,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::TopicExists(t) => write!(f, "topic '{t}' already exists"),
            BusError::NoSuchTopic(t) => write!(f, "no such topic '{t}'"),
            BusError::Full {
                topic,
                retry_after_ms,
            } => write!(
                f,
                "topic '{topic}' is full (commit floor pins retention); retry after {retry_after_ms}ms"
            ),
            BusError::Injected(what) => write!(f, "injected fault: {what}"),
            BusError::CommitFailed => write!(f, "offset commit failed (injected fault)"),
        }
    }
}

impl std::error::Error for BusError {}

/// A deterministic fault-injection schedule applied broker-wide.
///
/// Counters are sequence-based (every Nth operation), so a given plan plus
/// a given workload produces the same fault schedule on every run — tests
/// assert exact outcomes instead of retrying until flaky.
///
/// ```
/// use logbus::{Broker, FaultPlan, Producer, BusError};
///
/// let broker = Broker::new();
/// broker.create_topic("t", 1).unwrap();
/// broker.inject_faults(FaultPlan::new().drop_every(2));
///
/// let p = Producer::new(&broker);
/// assert!(p.send("t", None, "delivered").is_ok());
/// // Second send hits the drop fault: the record is NOT appended, the
/// // producer sees an error and can retry (at-least-once, not silent loss).
/// assert_eq!(p.send("t", None, "dropped"), Err(BusError::Injected("drop")));
/// assert!(p.send("t", None, "delivered again").is_ok());
///
/// broker.clear_faults();
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail every Nth `send` with [`BusError::Injected`]`("drop")`; the
    /// record is not appended. `0` disables.
    pub drop_every: u64,
    /// On every Nth non-empty partition read, deliver the batch's last
    /// record twice (same partition + offset — a redelivery, exactly what a
    /// crashed-and-restarted consumer produces). `0` disables.
    pub duplicate_every: u64,
    /// Delay every Nth `send`: the record is appended but held invisible to
    /// consumers until `delay_for` further sends occur. `0` disables.
    pub delay_every: u64,
    /// How many subsequent sends a delayed record stays hidden for.
    pub delay_for: u64,
    /// Fail the next N offset commits with [`BusError::CommitFailed`].
    pub fail_commits: u64,
}

impl FaultPlan {
    /// A plan with every fault disabled.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails every `n`th send (record not appended).
    pub fn drop_every(mut self, n: u64) -> FaultPlan {
        self.drop_every = n;
        self
    }

    /// Redelivers the last record of every `n`th partition read.
    pub fn duplicate_every(mut self, n: u64) -> FaultPlan {
        self.duplicate_every = n;
        self
    }

    /// Hides every `n`th sent record from consumers for `for_sends`
    /// subsequent sends.
    pub fn delay_every(mut self, n: u64, for_sends: u64) -> FaultPlan {
        self.delay_every = n;
        self.delay_for = for_sends;
        self
    }

    /// Fails the next `n` offset commits.
    pub fn fail_commits(mut self, n: u64) -> FaultPlan {
        self.fail_commits = n;
        self
    }
}

/// A record suffix held back by the delay fault: offsets `>= offset` in
/// `(topic, partition)` stay invisible until the broker-wide send sequence
/// reaches `due_seq`.
#[derive(Debug, Clone)]
pub(crate) struct DelayHold {
    pub topic: String,
    pub partition: usize,
    pub offset: u64,
    pub due_seq: u64,
}

/// Shared mutable fault state; producers and consumers hold an `Arc` so
/// injection applies to handles created before or after `inject_faults`.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: RwLock<FaultPlan>,
    send_seq: AtomicU64,
    read_seq: AtomicU64,
    commit_fail_budget: AtomicU64,
    holds: Mutex<Vec<DelayHold>>,
    injected: AtomicU64,
}

impl FaultState {
    fn count(&self, kind: &str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        telemetry::global().counter("bus.faults.injected").incr(1);
        telemetry::global()
            .counter(&format!("bus.faults.injected.{kind}"))
            .incr(1);
    }

    /// Advances the send sequence and reports which send-side fault (if
    /// any) applies: `Some(true)` = drop, `Some(false)` = delay.
    pub(crate) fn on_send(&self) -> Option<bool> {
        let plan = self.plan.read();
        if plan.drop_every == 0 && plan.delay_every == 0 {
            return None;
        }
        let seq = self.send_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if plan.drop_every > 0 && seq.is_multiple_of(plan.drop_every) {
            self.count("drop");
            return Some(true);
        }
        if plan.delay_every > 0 && seq.is_multiple_of(plan.delay_every) {
            self.count("delay");
            return Some(false);
        }
        None
    }

    pub(crate) fn park(&self, topic: &str, partition: usize, offset: u64) {
        let delay_for = self.plan.read().delay_for.max(1);
        let due_seq = self.send_seq.load(Ordering::Relaxed) + delay_for;
        self.holds.lock().push(DelayHold {
            topic: topic.to_owned(),
            partition,
            offset,
            due_seq,
        });
    }

    /// The lowest held-back offset for `(topic, partition)`, dropping holds
    /// whose due sequence has passed. `u64::MAX` when unconstrained.
    pub(crate) fn visibility_cap(&self, topic: &str, partition: usize) -> u64 {
        let mut holds = self.holds.lock();
        if holds.is_empty() {
            return u64::MAX;
        }
        let now = self.send_seq.load(Ordering::Relaxed);
        holds.retain(|h| h.due_seq > now);
        holds
            .iter()
            .filter(|h| h.topic == topic && h.partition == partition)
            .map(|h| h.offset)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// True when this read should redeliver the batch tail.
    pub(crate) fn duplicate_read(&self) -> bool {
        let every = self.plan.read().duplicate_every;
        if every == 0 {
            return false;
        }
        let seq = self.read_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if seq.is_multiple_of(every) {
            self.count("duplicate");
            return true;
        }
        false
    }

    /// True when this commit should fail (consumes one unit of budget).
    pub(crate) fn fail_commit(&self) -> bool {
        if self
            .commit_fail_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
        {
            self.count("commit");
            return true;
        }
        false
    }

    fn install(&self, plan: FaultPlan) {
        self.commit_fail_budget
            .store(plan.fail_commits, Ordering::Relaxed);
        *self.plan.write() = plan;
    }

    fn release_all(&self) -> usize {
        let mut holds = self.holds.lock();
        let n = holds.len();
        holds.clear();
        n
    }
}

/// Consumer-group state: committed offsets and live members per topic.
#[derive(Debug)]
pub(crate) struct GroupState {
    /// Committed offset per partition.
    pub committed: Vec<u64>,
    /// Event-time watermark checkpointed alongside the offsets (see
    /// `Consumer::commit_through`); `i64::MIN` until first checkpoint.
    pub checkpoint_watermark: i64,
    /// Member ids in join order; partition assignment is round-robin over
    /// this list.
    pub members: Vec<u64>,
    /// Next member id.
    pub next_member: u64,
    /// Bumped on every membership change; consumers refresh assignments
    /// when it moves.
    pub generation: u64,
}

impl Default for GroupState {
    fn default() -> GroupState {
        GroupState {
            committed: Vec::new(),
            checkpoint_watermark: i64::MIN,
            members: Vec::new(),
            next_member: 0,
            generation: 0,
        }
    }
}

/// `(group, topic)` → shared group state.
type GroupMap = HashMap<(String, String), Arc<RwLock<GroupState>>>;

/// The message bus.
#[derive(Default)]
pub struct Broker {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: RwLock<GroupMap>,
    faults: Arc<FaultState>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Creates a topic with default retention.
    pub fn create_topic(&self, name: &str, partitions: usize) -> Result<(), BusError> {
        self.create_topic_with_retention(name, partitions, DEFAULT_RETENTION)
    }

    /// Creates a topic with explicit per-partition retention (which is also
    /// its capacity: a full partition pushes back on producers rather than
    /// evicting records a registered group has not committed past).
    pub fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: usize,
        retention: usize,
    ) -> Result<(), BusError> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BusError::TopicExists(name.to_owned()));
        }
        topics.insert(
            name.to_owned(),
            Arc::new(Topic::new(name, partitions, retention)),
        );
        Ok(())
    }

    /// Looks up a topic.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>, BusError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BusError::NoSuchTopic(name.to_owned()))
    }

    /// All topic names, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Installs a fault-injection plan (replacing any previous one).
    /// Affects producers and consumers already constructed from this
    /// broker. See [`FaultPlan`] for the knobs.
    pub fn inject_faults(&self, plan: FaultPlan) {
        self.faults.install(plan);
    }

    /// Removes the active fault plan and releases any delayed records.
    pub fn clear_faults(&self) {
        self.faults.install(FaultPlan::default());
        self.faults.release_all();
    }

    /// Makes all delay-held records visible immediately; returns how many
    /// holds were released.
    pub fn release_delayed(&self) -> usize {
        self.faults.release_all()
    }

    pub(crate) fn faults(&self) -> Arc<FaultState> {
        Arc::clone(&self.faults)
    }

    pub(crate) fn group(&self, group: &str, topic: &str) -> Arc<RwLock<GroupState>> {
        let key = (group.to_owned(), topic.to_owned());
        if let Some(g) = self.groups.read().get(&key) {
            return Arc::clone(g);
        }
        let (state, fresh) = {
            let mut groups = self.groups.write();
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    (Arc::clone(e.insert(Arc::default())), true)
                }
            }
        };
        if !fresh {
            return state;
        }
        // First sight of this (group, topic): seed committed offsets at the
        // earliest retained offset (a fresh group on a trimmed topic must
        // not pin eviction at offset 0) and register with the topic so the
        // group's commits bound retention from here on.
        if let Ok(t) = self.topic(topic) {
            {
                let mut g = state.write();
                if g.committed.is_empty() {
                    g.committed = t
                        .partitions
                        .iter()
                        .map(crate::topic::PartitionLog::begin_offset)
                        .collect();
                }
            }
            t.register_group(Arc::clone(&state));
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_topics() {
        let b = Broker::new();
        b.create_topic("a", 2).unwrap();
        b.create_topic("b", 4).unwrap();
        assert_eq!(b.topic("a").unwrap().partitions.len(), 2);
        assert_eq!(b.topic_names(), vec!["a", "b"]);
        assert!(matches!(
            b.create_topic("a", 1),
            Err(BusError::TopicExists(_))
        ));
        assert!(matches!(b.topic("zzz"), Err(BusError::NoSuchTopic(_))));
    }

    #[test]
    fn group_state_is_shared() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        let g1 = b.group("ingesters", "t");
        let g2 = b.group("ingesters", "t");
        g1.write().next_member = 7;
        assert_eq!(g2.read().next_member, 7);
        let other = b.group("analytics", "t");
        assert_eq!(other.read().next_member, 0);
    }

    #[test]
    fn fresh_group_seeds_committed_from_begin_offsets() {
        let b = Broker::new();
        b.create_topic_with_retention("t", 1, 4).unwrap();
        let topic = b.topic("t").unwrap();
        for i in 0..10 {
            topic.partitions[0]
                .try_append(crate::record::Record::new(None, i.to_string(), 0), 0)
                .unwrap();
        }
        assert_eq!(topic.partitions[0].begin_offset(), 6);
        let g = b.group("late-joiner", "t");
        assert_eq!(g.read().committed, vec![6]);
        // And the floor now reflects the new group.
        assert_eq!(topic.partitions[0].commit_floor(), 6);
    }

    #[test]
    fn fault_plan_install_and_clear() {
        let b = Broker::new();
        b.inject_faults(FaultPlan::new().drop_every(1));
        assert!(b.faults.on_send().is_some());
        b.clear_faults();
        assert!(b.faults.on_send().is_none());
    }
}
