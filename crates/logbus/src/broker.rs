//! The broker: topic registry plus consumer-group coordination.

use crate::topic::{Topic, DEFAULT_RETENTION};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Topic already exists.
    TopicExists(String),
    /// Topic does not exist.
    NoSuchTopic(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::TopicExists(t) => write!(f, "topic '{t}' already exists"),
            BusError::NoSuchTopic(t) => write!(f, "no such topic '{t}'"),
        }
    }
}

impl std::error::Error for BusError {}

/// Consumer-group state: committed offsets and live members per topic.
#[derive(Debug, Default)]
pub(crate) struct GroupState {
    /// Committed offset per partition.
    pub committed: Vec<u64>,
    /// Member ids in join order; partition assignment is round-robin over
    /// this list.
    pub members: Vec<u64>,
    /// Next member id.
    pub next_member: u64,
    /// Bumped on every membership change; consumers refresh assignments
    /// when it moves.
    pub generation: u64,
}

/// `(group, topic)` → shared group state.
type GroupMap = HashMap<(String, String), Arc<RwLock<GroupState>>>;

/// The message bus.
#[derive(Default)]
pub struct Broker {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: RwLock<GroupMap>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Creates a topic with default retention.
    pub fn create_topic(&self, name: &str, partitions: usize) -> Result<(), BusError> {
        self.create_topic_with_retention(name, partitions, DEFAULT_RETENTION)
    }

    /// Creates a topic with explicit per-partition retention.
    pub fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: usize,
        retention: usize,
    ) -> Result<(), BusError> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BusError::TopicExists(name.to_owned()));
        }
        topics.insert(
            name.to_owned(),
            Arc::new(Topic::new(name, partitions, retention)),
        );
        Ok(())
    }

    /// Looks up a topic.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>, BusError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BusError::NoSuchTopic(name.to_owned()))
    }

    /// All topic names, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn group(&self, group: &str, topic: &str) -> Arc<RwLock<GroupState>> {
        let key = (group.to_owned(), topic.to_owned());
        if let Some(g) = self.groups.read().get(&key) {
            return Arc::clone(g);
        }
        let mut groups = self.groups.write();
        Arc::clone(groups.entry(key).or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_topics() {
        let b = Broker::new();
        b.create_topic("a", 2).unwrap();
        b.create_topic("b", 4).unwrap();
        assert_eq!(b.topic("a").unwrap().partitions.len(), 2);
        assert_eq!(b.topic_names(), vec!["a", "b"]);
        assert!(matches!(
            b.create_topic("a", 1),
            Err(BusError::TopicExists(_))
        ));
        assert!(matches!(b.topic("zzz"), Err(BusError::NoSuchTopic(_))));
    }

    #[test]
    fn group_state_is_shared() {
        let b = Broker::new();
        let g1 = b.group("ingesters", "t");
        let g2 = b.group("ingesters", "t");
        g1.write().next_member = 7;
        assert_eq!(g2.read().next_member, 7);
        let other = b.group("analytics", "t");
        assert_eq!(other.read().next_member, 0);
    }
}
