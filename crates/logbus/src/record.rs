//! Records as they flow through the bus.

/// One published record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Topic partition the record lives in.
    pub partition: usize,
    /// Offset within the partition (dense, starting at 0).
    pub offset: u64,
    /// Optional partitioning key (e.g. the source node cname).
    pub key: Option<String>,
    /// Payload — raw log line or serialized event.
    pub value: String,
    /// Producer-supplied timestamp (ms since epoch); 0 when unset.
    pub timestamp_ms: i64,
}

impl Record {
    /// Builds a record pending assignment (partition/offset filled by the
    /// topic on append).
    pub fn new(key: Option<&str>, value: impl Into<String>, timestamp_ms: i64) -> Record {
        Record {
            partition: 0,
            offset: 0,
            key: key.map(str::to_owned),
            value: value.into(),
            timestamp_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let r = Record::new(Some("k"), "v", 42);
        assert_eq!(r.key.as_deref(), Some("k"));
        assert_eq!(r.value, "v");
        assert_eq!(r.timestamp_ms, 42);
        assert_eq!((r.partition, r.offset), (0, 0));
        let r = Record::new(None, String::from("x"), 0);
        assert!(r.key.is_none());
    }
}
