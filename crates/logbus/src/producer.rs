//! Producers: publish records to topics.

use crate::broker::{Broker, BusError};
use crate::record::Record;
use std::sync::atomic::{AtomicU64, Ordering};

/// A handle for publishing records. Cheap to create; clone-free (borrows
/// the broker) so multiple producer threads just make their own.
pub struct Producer<'b> {
    broker: &'b Broker,
    round_robin: AtomicU64,
}

impl<'b> Producer<'b> {
    /// Creates a producer.
    pub fn new(broker: &'b Broker) -> Producer<'b> {
        Producer {
            broker,
            round_robin: AtomicU64::new(0),
        }
    }

    /// Publishes a record. Keyed records go to the key's partition (stable
    /// per-source ordering); keyless records round-robin.
    pub fn send(
        &self,
        topic: &str,
        key: Option<&str>,
        value: impl Into<String>,
    ) -> Result<(usize, u64), BusError> {
        self.send_at(topic, key, value, 0)
    }

    /// Publishes a record with an event timestamp.
    pub fn send_at(
        &self,
        topic: &str,
        key: Option<&str>,
        value: impl Into<String>,
        timestamp_ms: i64,
    ) -> Result<(usize, u64), BusError> {
        let _span = telemetry::span!("logbus.producer.send");
        let topic_ref = self.broker.topic(topic)?;
        let partition = match key {
            Some(k) => topic_ref.partition_for_key(k),
            None => {
                (self.round_robin.fetch_add(1, Ordering::Relaxed) as usize)
                    % topic_ref.partitions.len()
            }
        };
        let record = Record::new(key, value, timestamp_ms);
        let offset = topic_ref.partitions[partition].append(record, partition);
        Ok((partition, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_records_preserve_order_per_key() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        let p = Producer::new(&b);
        let mut partitions = std::collections::HashSet::new();
        for i in 0..10 {
            let (part, off) = p.send("t", Some("node-A"), format!("m{i}")).unwrap();
            partitions.insert(part);
            assert_eq!(off, i);
        }
        assert_eq!(partitions.len(), 1, "one key, one partition");
    }

    #[test]
    fn keyless_records_round_robin() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        let p = Producer::new(&b);
        let parts: Vec<usize> = (0..8).map(|_| p.send("t", None, "x").unwrap().0).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn send_to_missing_topic_errors() {
        let b = Broker::new();
        let p = Producer::new(&b);
        assert!(p.send("missing", None, "x").is_err());
    }

    #[test]
    fn timestamps_carried_through() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        let p = Producer::new(&b);
        p.send_at("t", None, "x", 12345).unwrap();
        let rec = &b.topic("t").unwrap().partitions[0].read(0, 1)[0];
        assert_eq!(rec.timestamp_ms, 12345);
    }
}
