//! Producers: publish records to topics.

use crate::broker::{Broker, BusError};
use crate::record::Record;
use std::sync::atomic::{AtomicU64, Ordering};

/// Suggested backoff carried in [`BusError::Full`]; roughly one consumer
/// poll cycle, so a backing-off producer re-checks after the lagging group
/// has had a chance to commit.
pub const RETRY_AFTER_MS: u64 = 10;

/// A handle for publishing records. Cheap to create; clone-free (borrows
/// the broker) so multiple producer threads just make their own.
///
/// Sends are subject to backpressure: when the target partition is at
/// capacity and a registered consumer group pins its head, `send` returns
/// [`BusError::Full`] and the caller decides whether to wait or shed.
///
/// ```
/// use logbus::{Broker, BusError, Producer};
///
/// let broker = Broker::new();
/// // Capacity 2 per partition...
/// broker.create_topic_with_retention("t", 1, 2).unwrap();
/// // ...pinned by a consumer group sitting at offset 0.
/// let consumer = logbus::Consumer::new(&broker, "g", "t").unwrap();
///
/// let producer = Producer::new(&broker);
/// producer.send("t", Some("node-a"), "line 1").unwrap();
/// producer.send("t", Some("node-a"), "line 2").unwrap();
/// match producer.send("t", Some("node-a"), "line 3") {
///     Err(BusError::Full { retry_after_ms, .. }) => assert!(retry_after_ms > 0),
///     other => panic!("expected backpressure, got {other:?}"),
/// }
/// ```
pub struct Producer<'b> {
    broker: &'b Broker,
    round_robin: AtomicU64,
}

impl<'b> Producer<'b> {
    /// Creates a producer.
    pub fn new(broker: &'b Broker) -> Producer<'b> {
        Producer {
            broker,
            round_robin: AtomicU64::new(0),
        }
    }

    /// Publishes a record. Keyed records go to the key's partition (stable
    /// per-source ordering); keyless records round-robin.
    pub fn send(
        &self,
        topic: &str,
        key: Option<&str>,
        value: impl Into<String>,
    ) -> Result<(usize, u64), BusError> {
        self.send_at(topic, key, value, 0)
    }

    /// Publishes a record with an event timestamp. Returns the partition
    /// and offset assigned, or [`BusError::Full`] under backpressure (the
    /// record was not appended and the send can be retried).
    pub fn send_at(
        &self,
        topic: &str,
        key: Option<&str>,
        value: impl Into<String>,
        timestamp_ms: i64,
    ) -> Result<(usize, u64), BusError> {
        let _span = telemetry::span!("logbus.producer.send");
        let topic_ref = self.broker.topic(topic)?;
        let partition = match key {
            Some(k) => topic_ref.partition_for_key(k),
            None => {
                (self.round_robin.fetch_add(1, Ordering::Relaxed) as usize)
                    % topic_ref.partitions.len()
            }
        };
        let faults = self.broker.faults();
        let fault = faults.on_send();
        if fault == Some(true) {
            return Err(BusError::Injected("drop"));
        }
        let record = Record::new(key, value, timestamp_ms);
        let Some(offset) = topic_ref.partitions[partition].try_append(record, partition) else {
            telemetry::global()
                .counter("bus.producer.backpressure")
                .incr(1);
            return Err(BusError::Full {
                topic: topic.to_owned(),
                retry_after_ms: RETRY_AFTER_MS,
            });
        };
        if fault == Some(false) {
            faults.park(topic, partition, offset);
        }
        Ok((partition, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::FaultPlan;
    use crate::consumer::Consumer;

    #[test]
    fn keyed_records_preserve_order_per_key() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        let p = Producer::new(&b);
        let mut partitions = std::collections::HashSet::new();
        for i in 0..10 {
            let (part, off) = p.send("t", Some("node-A"), format!("m{i}")).unwrap();
            partitions.insert(part);
            assert_eq!(off, i);
        }
        assert_eq!(partitions.len(), 1, "one key, one partition");
    }

    #[test]
    fn keyless_records_round_robin() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        let p = Producer::new(&b);
        let parts: Vec<usize> = (0..8).map(|_| p.send("t", None, "x").unwrap().0).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn send_to_missing_topic_errors() {
        let b = Broker::new();
        let p = Producer::new(&b);
        assert!(p.send("missing", None, "x").is_err());
    }

    #[test]
    fn timestamps_carried_through() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        let p = Producer::new(&b);
        p.send_at("t", None, "x", 12345).unwrap();
        let rec = &b.topic("t").unwrap().partitions[0].read(0, 1)[0];
        assert_eq!(rec.timestamp_ms, 12345);
    }

    #[test]
    fn full_partition_backpressures_then_recovers_after_commit() {
        let b = Broker::new();
        b.create_topic_with_retention("t", 1, 3).unwrap();
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let p = Producer::new(&b);
        for i in 0..3 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        assert!(matches!(
            p.send("t", None, "overflow"),
            Err(BusError::Full { .. })
        ));
        // Consumer drains and commits: the floor moves, appends resume.
        assert_eq!(c.poll(10).len(), 3);
        c.commit().unwrap();
        assert!(p.send("t", None, "resumed").is_ok());
    }

    #[test]
    fn without_groups_retention_still_evicts() {
        let b = Broker::new();
        b.create_topic_with_retention("t", 1, 3).unwrap();
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        assert_eq!(b.topic("t").unwrap().partitions[0].begin_offset(), 7);
    }

    #[test]
    fn drop_fault_fails_every_nth_send() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        b.inject_faults(FaultPlan::new().drop_every(3));
        let p = Producer::new(&b);
        let results: Vec<bool> = (0..6)
            .map(|i| p.send("t", None, format!("m{i}")).is_ok())
            .collect();
        assert_eq!(results, vec![true, true, false, true, true, false]);
        assert_eq!(
            b.topic("t").unwrap().total_len(),
            4,
            "dropped sends never append"
        );
    }

    #[test]
    fn delay_fault_hides_then_releases() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        b.inject_faults(FaultPlan::new().delay_every(2, 100));
        let p = Producer::new(&b);
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        p.send("t", None, "a").unwrap();
        p.send("t", None, "b").unwrap(); // delayed (2nd send)
        p.send("t", None, "c").unwrap();
        // Offset 1 is held, which also blocks offset 2 (in-order delivery).
        assert_eq!(c.poll(10).len(), 1);
        assert_eq!(b.release_delayed(), 1);
        assert_eq!(c.poll(10).len(), 2);
    }
}
