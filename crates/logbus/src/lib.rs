//! `logbus` — a partitioned, replayable publish/subscribe message bus:
//! the Apache Kafka substitute for real-time log ingestion.
//!
//! The paper's streaming path has OLCF "event producers" publishing "each
//! event occurrence ... to an Apache Kafka message bus that is available to
//! consumers subscribing to the corresponding topic". `logbus` rebuilds the
//! semantics that path relies on:
//!
//! * **Topics with partitions** — append-only logs; records with the same
//!   key always land in the same partition, preserving per-source order.
//! * **Offsets and replay** — consumers poll from an explicit offset;
//!   records are retained (up to a cap) rather than consumed destructively.
//! * **Consumer groups** — partitions are balanced over group members, and
//!   committed offsets survive rebalances.
//! * **Delivery contract** — retention never evicts past the lowest
//!   committed group offset; a full partition backpressures producers
//!   ([`BusError::Full`]) instead of dropping unread records. Combined
//!   with commit-after-ack consumers this yields at-least-once delivery.
//! * **Fault injection** — a broker-wide [`FaultPlan`] can drop, duplicate
//!   or delay records and fail commits on a deterministic schedule, so the
//!   delivery contract is falsifiable in tests.
//!
//! # Example
//! ```
//! use logbus::{Broker, Producer, Consumer};
//!
//! let broker = Broker::new();
//! broker.create_topic("lustre-events", 4).unwrap();
//!
//! let producer = Producer::new(&broker);
//! producer.send("lustre-events", Some("c0-0c0s0n0"), "OST0041 not responding").unwrap();
//!
//! let mut consumer = Consumer::new(&broker, "ingesters", "lustre-events").unwrap();
//! let records = consumer.poll(10);
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].value, "OST0041 not responding");
//! consumer.commit().unwrap();
//! ```

#![deny(missing_docs)]

pub mod broker;
pub mod consumer;
pub mod producer;
pub mod record;
pub mod topic;

pub use broker::{Broker, BusError, FaultPlan};
pub use consumer::Consumer;
pub use producer::Producer;
pub use record::Record;
