//! Consumers: group-coordinated, offset-tracking topic readers.

use crate::broker::{Broker, BusError, FaultState, GroupState};
use crate::record::Record;
use crate::topic::Topic;
use parking_lot::RwLock;
use std::sync::Arc;

/// A consumer in a consumer group.
///
/// Partitions of the topic are balanced over the group's live members
/// (round-robin by partition index). Each consumer tracks a private
/// position per assigned partition, starting from the group's committed
/// offset; [`Consumer::commit`] publishes positions back to the group.
/// Membership changes trigger a rebalance on the next poll.
///
/// Commits move the topic's *commit floor*: retention eviction never trims
/// past the lowest committed offset of any group, so an uncommitted record
/// can be delayed (backpressure) but never silently lost.
///
/// ```
/// use logbus::{Broker, Consumer, Producer};
///
/// let broker = Broker::new();
/// broker.create_topic("t", 2).unwrap();
/// let producer = Producer::new(&broker);
/// for i in 0..4 {
///     producer.send("t", None, format!("line {i}")).unwrap();
/// }
///
/// let mut consumer = Consumer::new(&broker, "ingesters", "t").unwrap();
/// let records = consumer.poll(100);
/// assert_eq!(records.len(), 4);
/// // Checkpoint: offsets + the event-time watermark travel together.
/// let positions: Vec<(usize, u64)> = consumer.positions().to_vec();
/// consumer.commit_through(&positions, 1_000).unwrap();
/// assert_eq!(consumer.checkpoint_watermark(), 1_000);
/// ```
pub struct Consumer {
    topic: Arc<Topic>,
    group: Arc<RwLock<GroupState>>,
    faults: Arc<FaultState>,
    member_id: u64,
    seen_generation: u64,
    /// (partition, next offset) pairs for the current assignment.
    positions: Vec<(usize, u64)>,
    next_pick: usize,
}

impl Consumer {
    /// Joins `group` for `topic`.
    pub fn new(broker: &Broker, group: &str, topic: &str) -> Result<Consumer, BusError> {
        let topic = broker.topic(topic)?;
        let group = broker.group(group, &topic.name);
        let member_id;
        {
            let mut g = group.write();
            if g.committed.is_empty() {
                g.committed = vec![0; topic.partitions.len()];
            }
            member_id = g.next_member;
            g.next_member += 1;
            g.members.push(member_id);
            g.generation += 1;
        }
        let mut c = Consumer {
            topic,
            group,
            faults: broker.faults(),
            member_id,
            seen_generation: 0,
            positions: Vec::new(),
            next_pick: 0,
        };
        c.rebalance();
        Ok(c)
    }

    /// The partitions currently assigned to this consumer.
    pub fn assignment(&self) -> Vec<usize> {
        self.positions.iter().map(|(p, _)| *p).collect()
    }

    /// Current (partition, next-offset) positions for the assignment.
    /// These are *poll* positions, ahead of the committed offsets until
    /// [`Consumer::commit`] (or `commit_through`) publishes them.
    pub fn positions(&self) -> &[(usize, u64)] {
        &self.positions
    }

    fn rebalance(&mut self) {
        let g = self.group.read();
        self.seen_generation = g.generation;
        let my_slot = g.members.iter().position(|m| *m == self.member_id);
        self.positions.clear();
        if let Some(slot) = my_slot {
            for p in 0..self.topic.partitions.len() {
                if p % g.members.len() == slot {
                    self.positions.push((p, g.committed[p]));
                }
            }
        }
        self.next_pick = 0;
    }

    /// Polls up to `max` records across assigned partitions (fair
    /// round-robin over partitions). Returns immediately (possibly empty).
    ///
    /// Under an active [`crate::FaultPlan`] a poll may redeliver a record
    /// (same partition and offset, exactly like a crash-restart replay);
    /// downstream consumers must treat `(partition, offset)` as the
    /// identity of a record, not its array position.
    pub fn poll(&mut self, max: usize) -> Vec<Record> {
        let mut span = telemetry::span!("logbus.consumer.poll");
        if self.group.read().generation != self.seen_generation {
            self.rebalance();
        }
        let mut out = Vec::new();
        if self.positions.is_empty() || max == 0 {
            return out;
        }
        let nparts = self.positions.len();
        let mut exhausted = 0;
        while out.len() < max && exhausted < nparts {
            let idx = self.next_pick % nparts;
            self.next_pick += 1;
            let (partition, offset) = self.positions[idx];
            let budget = max - out.len();
            let cap = self.faults.visibility_cap(&self.topic.name, partition);
            let records = self.topic.partitions[partition].read_until(offset, budget.min(64), cap);
            if records.is_empty() {
                exhausted += 1;
                continue;
            }
            exhausted = 0;
            self.positions[idx].1 = records.last().expect("nonempty").offset + 1;
            if self.faults.duplicate_read() {
                let dup = records.last().expect("nonempty").clone();
                out.extend(records);
                out.push(dup);
            } else {
                out.extend(records);
            }
        }
        span.tag("records", out.len().to_string());
        telemetry::global()
            .counter("logbus.consumer.records")
            .incr(out.len() as u64);
        out
    }

    /// Commits current poll positions to the group.
    ///
    /// Fails only under an injected commit fault ([`BusError::CommitFailed`]);
    /// positions are untouched on failure, so callers retry by calling
    /// `commit` again later (records polled past the committed offset are
    /// simply redelivered after a crash — at-least-once).
    pub fn commit(&self) -> Result<(), BusError> {
        let positions = self.positions.clone();
        self.commit_through(&positions, i64::MIN)
    }

    /// Commits explicit `(partition, offset)` pairs plus an event-time
    /// watermark, atomically (one group-state write).
    ///
    /// This is the checkpoint primitive for at-least-once ingestion: an
    /// ingester commits the lowest offset it has *not yet durably stored*
    /// per partition, together with its coalescing watermark. A restarted
    /// member resumes from those offsets and seeds its window watermark
    /// from [`Consumer::checkpoint_watermark`], so replayed records whose
    /// windows were already flushed are suppressed as late instead of
    /// re-written as partial windows.
    ///
    /// Offsets never regress (a commit below the group's committed offset
    /// is a no-op for that partition), and the watermark is monotonic.
    pub fn commit_through(
        &self,
        through: &[(usize, u64)],
        watermark_ms: i64,
    ) -> Result<(), BusError> {
        if self.faults.fail_commit() {
            return Err(BusError::CommitFailed);
        }
        {
            let mut g = self.group.write();
            for (p, offset) in through {
                if *p < g.committed.len() && *offset > g.committed[*p] {
                    g.committed[*p] = *offset;
                }
            }
            if watermark_ms > g.checkpoint_watermark {
                g.checkpoint_watermark = watermark_ms;
            }
        }
        // Group lock released above: floors re-read every group state.
        self.topic.refresh_commit_floors();
        Ok(())
    }

    /// The event-time watermark last checkpointed by this consumer group
    /// (`i64::MIN` before the first checkpoint).
    pub fn checkpoint_watermark(&self) -> i64 {
        self.group.read().checkpoint_watermark
    }

    /// Lag: records available but not yet polled, across the assignment.
    pub fn lag(&self) -> u64 {
        self.positions
            .iter()
            .map(|(p, offset)| {
                self.topic.partitions[*p]
                    .end_offset()
                    .saturating_sub(*offset)
            })
            .sum()
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        let mut g = self.group.write();
        g.members.retain(|m| *m != self.member_id);
        g.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::FaultPlan;
    use crate::producer::Producer;

    fn setup(partitions: usize) -> Broker {
        let b = Broker::new();
        b.create_topic("t", partitions).unwrap();
        b
    }

    #[test]
    fn single_consumer_gets_everything_in_partition_order() {
        let b = setup(3);
        let p = Producer::new(&b);
        for i in 0..30 {
            p.send("t", Some(&format!("k{}", i % 5)), format!("m{i}"))
                .unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        assert_eq!(c.assignment(), vec![0, 1, 2]);
        let records = c.poll(100);
        assert_eq!(records.len(), 30);
        // Per-partition offsets are in order.
        for part in 0..3 {
            let offs: Vec<u64> = records
                .iter()
                .filter(|r| r.partition == part)
                .map(|r| r.offset)
                .collect();
            assert!(offs.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(c.lag(), 0);
    }

    #[test]
    fn poll_respects_max() {
        let b = setup(2);
        let p = Producer::new(&b);
        for i in 0..50 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let first = c.poll(10);
        assert_eq!(first.len(), 10);
        assert_eq!(c.lag(), 40);
        let rest = c.poll(1000);
        assert_eq!(rest.len(), 40);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for r in first.iter().chain(&rest) {
            assert!(seen.insert((r.partition, r.offset)));
        }
    }

    #[test]
    fn two_members_split_partitions() {
        let b = setup(4);
        let mut c1 = Consumer::new(&b, "g", "t").unwrap();
        let mut c2 = Consumer::new(&b, "g", "t").unwrap();
        let p = Producer::new(&b);
        for i in 0..40 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let r1 = c1.poll(100);
        let r2 = c2.poll(100);
        assert_eq!(r1.len() + r2.len(), 40);
        let a1: std::collections::HashSet<usize> = r1.iter().map(|r| r.partition).collect();
        let a2: std::collections::HashSet<usize> = r2.iter().map(|r| r.partition).collect();
        assert!(a1.is_disjoint(&a2));
        assert_eq!(c1.assignment().len() + c2.assignment().len(), 4);
    }

    #[test]
    fn committed_offsets_survive_member_replacement() {
        let b = setup(2);
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        {
            let mut c = Consumer::new(&b, "g", "t").unwrap();
            let got = c.poll(6);
            assert_eq!(got.len(), 6);
            c.commit().unwrap();
        } // drop -> leave group
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let got = c.poll(100);
        assert_eq!(got.len(), 4, "resumes from committed offsets");
    }

    #[test]
    fn uncommitted_progress_is_lost_on_rejoin() {
        let b = setup(1);
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        {
            let mut c = Consumer::new(&b, "g", "t").unwrap();
            assert_eq!(c.poll(7).len(), 7);
            // no commit
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        assert_eq!(c.poll(100).len(), 10, "replay from offset 0");
    }

    #[test]
    fn rebalance_on_member_join_mid_stream() {
        let b = setup(4);
        let p = Producer::new(&b);
        let mut c1 = Consumer::new(&b, "g", "t").unwrap();
        for i in 0..8 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        assert_eq!(c1.poll(100).len(), 8);
        c1.commit().unwrap();
        // New member joins: c1 must shrink its assignment on next poll.
        let c2 = Consumer::new(&b, "g", "t").unwrap();
        let _ = c1.poll(1);
        assert_eq!(c1.assignment().len(), 2);
        assert_eq!(c2.assignment().len(), 2);
    }

    #[test]
    fn different_groups_consume_independently() {
        let b = setup(1);
        let p = Producer::new(&b);
        for i in 0..5 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut g1 = Consumer::new(&b, "alpha", "t").unwrap();
        let mut g2 = Consumer::new(&b, "beta", "t").unwrap();
        assert_eq!(g1.poll(100).len(), 5);
        assert_eq!(g2.poll(100).len(), 5, "fan-out to both groups");
    }

    #[test]
    fn commit_through_checkpoints_offsets_and_watermark() {
        let b = setup(2);
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        {
            let mut c = Consumer::new(&b, "g", "t").unwrap();
            assert_eq!(c.poll(100).len(), 10);
            // Pretend offsets below 3 (p0) / 2 (p1) are durably stored.
            c.commit_through(&[(0, 3), (1, 2)], 7_000).unwrap();
            // Watermark is monotonic: a stale commit can't move it back.
            c.commit_through(&[], 5_000).unwrap();
            assert_eq!(c.checkpoint_watermark(), 7_000);
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        assert_eq!(c.checkpoint_watermark(), 7_000);
        assert_eq!(c.poll(100).len(), 5, "replays only unacked records");
    }

    #[test]
    fn commit_never_regresses_offsets() {
        let b = setup(1);
        let p = Producer::new(&b);
        for i in 0..5 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        c.poll(100);
        c.commit_through(&[(0, 4)], 0).unwrap();
        c.commit_through(&[(0, 1)], 0).unwrap();
        assert_eq!(c.group.read().committed[0], 4);
    }

    #[test]
    fn injected_commit_fault_fails_then_recovers() {
        let b = setup(1);
        b.inject_faults(FaultPlan::new().fail_commits(2));
        let p = Producer::new(&b);
        for i in 0..5 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        c.poll(100);
        assert_eq!(c.commit(), Err(BusError::CommitFailed));
        assert_eq!(c.commit(), Err(BusError::CommitFailed));
        c.commit().unwrap(); // budget exhausted, commit goes through
        assert_eq!(c.group.read().committed[0], 5);
    }

    #[test]
    fn duplicate_fault_redelivers_same_offset() {
        let b = setup(1);
        b.inject_faults(FaultPlan::new().duplicate_every(1));
        let p = Producer::new(&b);
        for i in 0..3 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let records = c.poll(100);
        assert_eq!(records.len(), 4, "one batch, last record delivered twice");
        assert_eq!(records[2].offset, records[3].offset);
        assert_eq!(records[2].value, records[3].value);
        // Position advanced normally: no further replay.
        assert!(c.poll(100).is_empty());
    }
}
