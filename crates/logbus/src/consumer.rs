//! Consumers: group-coordinated, offset-tracking topic readers.

use crate::broker::{Broker, BusError, GroupState};
use crate::record::Record;
use crate::topic::Topic;
use parking_lot::RwLock;
use std::sync::Arc;

/// A consumer in a consumer group.
///
/// Partitions of the topic are balanced over the group's live members
/// (round-robin by partition index). Each consumer tracks a private
/// position per assigned partition, starting from the group's committed
/// offset; [`Consumer::commit`] publishes positions back to the group.
/// Membership changes trigger a rebalance on the next poll.
pub struct Consumer {
    topic: Arc<Topic>,
    group: Arc<RwLock<GroupState>>,
    member_id: u64,
    seen_generation: u64,
    /// (partition, next offset) pairs for the current assignment.
    positions: Vec<(usize, u64)>,
    next_pick: usize,
}

impl Consumer {
    /// Joins `group` for `topic`.
    pub fn new(broker: &Broker, group: &str, topic: &str) -> Result<Consumer, BusError> {
        let topic = broker.topic(topic)?;
        let group = broker.group(group, &topic.name);
        let member_id;
        {
            let mut g = group.write();
            if g.committed.is_empty() {
                g.committed = vec![0; topic.partitions.len()];
            }
            member_id = g.next_member;
            g.next_member += 1;
            g.members.push(member_id);
            g.generation += 1;
        }
        let mut c = Consumer {
            topic,
            group,
            member_id,
            seen_generation: 0,
            positions: Vec::new(),
            next_pick: 0,
        };
        c.rebalance();
        Ok(c)
    }

    /// The partitions currently assigned to this consumer.
    pub fn assignment(&self) -> Vec<usize> {
        self.positions.iter().map(|(p, _)| *p).collect()
    }

    fn rebalance(&mut self) {
        let g = self.group.read();
        self.seen_generation = g.generation;
        let my_slot = g.members.iter().position(|m| *m == self.member_id);
        self.positions.clear();
        if let Some(slot) = my_slot {
            for p in 0..self.topic.partitions.len() {
                if p % g.members.len() == slot {
                    self.positions.push((p, g.committed[p]));
                }
            }
        }
        self.next_pick = 0;
    }

    /// Polls up to `max` records across assigned partitions (fair
    /// round-robin over partitions). Returns immediately (possibly empty).
    pub fn poll(&mut self, max: usize) -> Vec<Record> {
        let mut span = telemetry::span!("logbus.consumer.poll");
        if self.group.read().generation != self.seen_generation {
            self.rebalance();
        }
        let mut out = Vec::new();
        if self.positions.is_empty() || max == 0 {
            return out;
        }
        let nparts = self.positions.len();
        let mut exhausted = 0;
        while out.len() < max && exhausted < nparts {
            let idx = self.next_pick % nparts;
            self.next_pick += 1;
            let (partition, offset) = self.positions[idx];
            let budget = max - out.len();
            let records = self.topic.partitions[partition].read(offset, budget.min(64));
            if records.is_empty() {
                exhausted += 1;
                continue;
            }
            exhausted = 0;
            self.positions[idx].1 = records.last().expect("nonempty").offset + 1;
            out.extend(records);
        }
        span.tag("records", out.len().to_string());
        telemetry::global()
            .counter("logbus.consumer.records")
            .incr(out.len() as u64);
        out
    }

    /// Commits current positions to the group.
    pub fn commit(&self) {
        let mut g = self.group.write();
        for (p, offset) in &self.positions {
            if *offset > g.committed[*p] {
                g.committed[*p] = *offset;
            }
        }
    }

    /// Lag: records available but not yet polled, across the assignment.
    pub fn lag(&self) -> u64 {
        self.positions
            .iter()
            .map(|(p, offset)| {
                self.topic.partitions[*p]
                    .end_offset()
                    .saturating_sub(*offset)
            })
            .sum()
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        let mut g = self.group.write();
        g.members.retain(|m| *m != self.member_id);
        g.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::Producer;

    fn setup(partitions: usize) -> Broker {
        let b = Broker::new();
        b.create_topic("t", partitions).unwrap();
        b
    }

    #[test]
    fn single_consumer_gets_everything_in_partition_order() {
        let b = setup(3);
        let p = Producer::new(&b);
        for i in 0..30 {
            p.send("t", Some(&format!("k{}", i % 5)), format!("m{i}"))
                .unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        assert_eq!(c.assignment(), vec![0, 1, 2]);
        let records = c.poll(100);
        assert_eq!(records.len(), 30);
        // Per-partition offsets are in order.
        for part in 0..3 {
            let offs: Vec<u64> = records
                .iter()
                .filter(|r| r.partition == part)
                .map(|r| r.offset)
                .collect();
            assert!(offs.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(c.lag(), 0);
    }

    #[test]
    fn poll_respects_max() {
        let b = setup(2);
        let p = Producer::new(&b);
        for i in 0..50 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let first = c.poll(10);
        assert_eq!(first.len(), 10);
        assert_eq!(c.lag(), 40);
        let rest = c.poll(1000);
        assert_eq!(rest.len(), 40);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for r in first.iter().chain(&rest) {
            assert!(seen.insert((r.partition, r.offset)));
        }
    }

    #[test]
    fn two_members_split_partitions() {
        let b = setup(4);
        let mut c1 = Consumer::new(&b, "g", "t").unwrap();
        let mut c2 = Consumer::new(&b, "g", "t").unwrap();
        let p = Producer::new(&b);
        for i in 0..40 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let r1 = c1.poll(100);
        let r2 = c2.poll(100);
        assert_eq!(r1.len() + r2.len(), 40);
        let a1: std::collections::HashSet<usize> = r1.iter().map(|r| r.partition).collect();
        let a2: std::collections::HashSet<usize> = r2.iter().map(|r| r.partition).collect();
        assert!(a1.is_disjoint(&a2));
        assert_eq!(c1.assignment().len() + c2.assignment().len(), 4);
    }

    #[test]
    fn committed_offsets_survive_member_replacement() {
        let b = setup(2);
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        {
            let mut c = Consumer::new(&b, "g", "t").unwrap();
            let got = c.poll(6);
            assert_eq!(got.len(), 6);
            c.commit();
        } // drop -> leave group
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        let got = c.poll(100);
        assert_eq!(got.len(), 4, "resumes from committed offsets");
    }

    #[test]
    fn uncommitted_progress_is_lost_on_rejoin() {
        let b = setup(1);
        let p = Producer::new(&b);
        for i in 0..10 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        {
            let mut c = Consumer::new(&b, "g", "t").unwrap();
            assert_eq!(c.poll(7).len(), 7);
            // no commit
        }
        let mut c = Consumer::new(&b, "g", "t").unwrap();
        assert_eq!(c.poll(100).len(), 10, "replay from offset 0");
    }

    #[test]
    fn rebalance_on_member_join_mid_stream() {
        let b = setup(4);
        let p = Producer::new(&b);
        let mut c1 = Consumer::new(&b, "g", "t").unwrap();
        for i in 0..8 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        assert_eq!(c1.poll(100).len(), 8);
        c1.commit();
        // New member joins: c1 must shrink its assignment on next poll.
        let c2 = Consumer::new(&b, "g", "t").unwrap();
        let _ = c1.poll(1);
        assert_eq!(c1.assignment().len(), 2);
        assert_eq!(c2.assignment().len(), 2);
    }

    #[test]
    fn different_groups_consume_independently() {
        let b = setup(1);
        let p = Producer::new(&b);
        for i in 0..5 {
            p.send("t", None, format!("m{i}")).unwrap();
        }
        let mut g1 = Consumer::new(&b, "alpha", "t").unwrap();
        let mut g2 = Consumer::new(&b, "beta", "t").unwrap();
        assert_eq!(g1.poll(100).len(), 5);
        assert_eq!(g2.poll(100).len(), 5, "fan-out to both groups");
    }
}
