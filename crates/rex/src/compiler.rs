//! Thompson-NFA construction: AST → instruction program.

use crate::ast::{Ast, ClassSet};

/// One predicate over a single input character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharPred {
    /// Exact character.
    Literal(char),
    /// Any character except `\n`.
    Any,
    /// Character-class membership.
    Class(ClassSet),
}

impl CharPred {
    /// Whether the predicate accepts `c`.
    #[inline]
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Literal(l) => *l == c,
            CharPred::Any => c != '\n',
            CharPred::Class(set) => set.contains(c),
        }
    }
}

/// A VM instruction. `usize` operands are program counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Consume one char matching the predicate, then go to pc+1.
    Char(CharPred),
    /// Fork execution; the first target has higher priority.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Store the current position into capture slot `n`.
    Save(usize),
    /// Zero-width assert: at start of text.
    AssertStart,
    /// Zero-width assert: at end of text.
    AssertEnd,
    /// Accept.
    Match,
}

/// A compiled program plus its capture-group count (incl. group 0).
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction list; entry point is pc 0.
    pub instrs: Vec<Instr>,
    /// Number of capture groups (group 0 included).
    pub groups: usize,
}

/// Compiles an AST. The produced program is wrapped as
/// `Save(0) <ast> Save(1) Match` so slot pair 0 is the overall span.
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler {
        instrs: Vec::new(),
        max_group: 0,
    };
    c.emit(Instr::Save(0));
    c.node(ast);
    c.emit(Instr::Save(1));
    c.emit(Instr::Match);
    Program {
        instrs: c.instrs,
        groups: c.max_group as usize + 1,
    }
}

struct Compiler {
    instrs: Vec<Instr>,
    max_group: u32,
}

impl Compiler {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn pc(&self) -> usize {
        self.instrs.len()
    }

    fn node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                self.emit(Instr::Char(CharPred::Literal(*c)));
            }
            Ast::AnyChar => {
                self.emit(Instr::Char(CharPred::Any));
            }
            Ast::Class(set) => {
                self.emit(Instr::Char(CharPred::Class(set.clone())));
            }
            Ast::StartAnchor => {
                self.emit(Instr::AssertStart);
            }
            Ast::EndAnchor => {
                self.emit(Instr::AssertEnd);
            }
            Ast::Concat(items) => {
                for item in items {
                    self.node(item);
                }
            }
            Ast::Alternate(branches) => self.alternate(branches),
            Ast::Group { index, node } => {
                if let Some(idx) = *index {
                    self.max_group = self.max_group.max(idx);
                    self.emit(Instr::Save(idx as usize * 2));
                    self.node(node);
                    self.emit(Instr::Save(idx as usize * 2 + 1));
                } else {
                    self.node(node);
                }
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.repeat(node, *min, *max, *greedy),
        }
    }

    fn alternate(&mut self, branches: &[Ast]) {
        // branch1 | branch2 | ... — chain of splits, each jumping to a
        // common exit patched afterwards.
        let mut jmp_ends = Vec::new();
        for (i, b) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split = self.emit(Instr::Split(0, 0));
                let b_start = self.pc();
                self.node(b);
                jmp_ends.push(self.emit(Instr::Jmp(0)));
                let next = self.pc();
                self.instrs[split] = Instr::Split(b_start, next);
            } else {
                self.node(b);
            }
        }
        let end = self.pc();
        for j in jmp_ends {
            self.instrs[j] = Instr::Jmp(end);
        }
    }

    fn repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Counted parts expand to copies; the parser bounds counts so the
        // program stays small.
        for _ in 0..min {
            self.node(node);
        }
        match max {
            None => self.star(node, greedy),
            Some(m) => {
                // (m - min) optional copies: each is `split exit` around one copy.
                let mut splits = Vec::new();
                for _ in min..m {
                    let split = self.emit(Instr::Split(0, 0));
                    let body = self.pc();
                    self.node(node);
                    splits.push((split, body));
                }
                let end = self.pc();
                for (split, body) in splits {
                    self.instrs[split] = if greedy {
                        Instr::Split(body, end)
                    } else {
                        Instr::Split(end, body)
                    };
                }
            }
        }
    }

    fn star(&mut self, node: &Ast, greedy: bool) {
        let split = self.emit(Instr::Split(0, 0));
        let body = self.pc();
        self.node(node);
        self.emit(Instr::Jmp(split));
        let end = self.pc();
        self.instrs[split] = if greedy {
            Instr::Split(body, end)
        } else {
            Instr::Split(end, body)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_str(p: &str) -> Program {
        compile(&parse(p).unwrap())
    }

    #[test]
    fn program_wraps_with_save_and_match() {
        let prog = compile_str("a");
        assert_eq!(prog.instrs.first(), Some(&Instr::Save(0)));
        assert_eq!(prog.instrs.last(), Some(&Instr::Match));
        assert_eq!(prog.groups, 1);
    }

    #[test]
    fn groups_counted() {
        assert_eq!(compile_str("(a)(b)").groups, 3);
        assert_eq!(compile_str("(?:a)").groups, 1);
    }

    #[test]
    fn star_structure() {
        // a* — split points into body first (greedy).
        let prog = compile_str("a*");
        let split = prog
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::Split(a, b) => Some((*a, *b)),
                _ => None,
            })
            .unwrap();
        assert!(split.0 < split.1, "greedy split prefers the body");
    }

    #[test]
    fn counted_expansion_size() {
        let p3 = compile_str("a{3}");
        let p5 = compile_str("a{5}");
        assert!(p5.instrs.len() > p3.instrs.len());
    }
}
