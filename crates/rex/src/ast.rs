//! Pattern syntax tree.

/// A node of the parsed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty pattern (matches the empty string).
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class; `ranges` are inclusive, `negated` flips the set.
    Class(ClassSet),
    /// `^`
    StartAnchor,
    /// `$`
    EndAnchor,
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// `a|b|c`
    Alternate(Vec<Ast>),
    /// Repetition of a sub-pattern.
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` means unbounded.
        max: Option<u32>,
        /// Greedy (default) or lazy (`?` suffix).
        greedy: bool,
    },
    /// A group; `index` is `Some(n)` for capturing groups.
    Group {
        /// Capture index (1-based); `None` for `(?:...)`.
        index: Option<u32>,
        /// The grouped pattern.
        node: Box<Ast>,
    },
}

/// A set of inclusive character ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Inclusive `(lo, hi)` ranges, normalized (sorted, merged).
    pub ranges: Vec<(char, char)>,
    /// When true the class matches characters *outside* the ranges.
    pub negated: bool,
}

impl ClassSet {
    /// Builds a normalized class from arbitrary ranges.
    pub fn new(mut ranges: Vec<(char, char)>, negated: bool) -> ClassSet {
        ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, phi)) if (lo as u32) <= (*phi as u32).saturating_add(1) => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        ClassSet {
            ranges: merged,
            negated,
        }
    }

    /// Whether `c` is in the (possibly negated) set.
    pub fn contains(&self, c: char) -> bool {
        let inside = self
            .ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok();
        inside != self.negated
    }

    /// `\d`
    pub fn digit() -> ClassSet {
        ClassSet::new(vec![('0', '9')], false)
    }

    /// `\w`
    pub fn word() -> ClassSet {
        ClassSet::new(vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')], false)
    }

    /// `\s`
    pub fn space() -> ClassSet {
        ClassSet::new(
            vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\u{b}', '\u{c}'),
            ],
            false,
        )
    }

    /// Returns the negated copy of this class.
    pub fn negate(mut self) -> ClassSet {
        self.negated = !self.negated;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_merge_and_sort() {
        let c = ClassSet::new(vec![('d', 'f'), ('a', 'c'), ('x', 'z')], false);
        assert_eq!(c.ranges, vec![('a', 'f'), ('x', 'z')]);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let c = ClassSet::new(vec![('a', 'm'), ('g', 'z')], false);
        assert_eq!(c.ranges, vec![('a', 'z')]);
    }

    #[test]
    fn contains_respects_negation() {
        let c = ClassSet::digit();
        assert!(c.contains('5'));
        assert!(!c.contains('x'));
        let n = c.negate();
        assert!(!n.contains('5'));
        assert!(n.contains('x'));
    }

    #[test]
    fn word_class_members() {
        let w = ClassSet::word();
        for c in ['a', 'Z', '0', '_'] {
            assert!(w.contains(c), "{c}");
        }
        for c in ['-', ' ', '.', 'é'] {
            assert!(!w.contains(c), "{c}");
        }
    }
}
