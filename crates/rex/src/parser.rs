//! Recursive-descent pattern parser.

use crate::ast::{Ast, ClassSet};
use std::fmt;

/// A pattern-compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Char offset in the pattern.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for PatternError {}

/// Parses `pattern` into an [`Ast`]; group indices are assigned
/// left-to-right starting at 1.
pub fn parse(pattern: &str) -> Result<Ast, PatternError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars,
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unmatched ')'"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_group: u32,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> PatternError {
        PatternError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                // `{` not followed by a count spec is a literal brace.
                if let Some(spec) = self.try_counted()? {
                    spec
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor | Ast::Empty) {
            return Err(self.err("repetition of empty-width atom"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("repetition max below min"));
            }
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parses `{n}`, `{n,}`, `{n,m}` after having peeked `{`. Returns
    /// `Ok(None)` (without consuming) when the braces are not a valid count.
    fn try_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, PatternError> {
        let start = self.pos;
        self.pos += 1; // consume '{'
        let min = self.number();
        let spec = match (min, self.peek()) {
            (Some(n), Some('}')) => {
                self.pos += 1;
                Some((n, Some(n)))
            }
            (Some(n), Some(',')) => {
                self.pos += 1;
                let max = self.number();
                if self.eat('}') {
                    Some((n, max))
                } else {
                    None
                }
            }
            _ => None,
        };
        if spec.is_none() {
            self.pos = start; // literal '{'
            return Ok(None);
        }
        if let Some((n, m)) = spec {
            const MAX_COUNT: u32 = 1000;
            if n > MAX_COUNT || m.unwrap_or(0) > MAX_COUNT {
                return Err(self.err("repetition count too large"));
            }
        }
        Ok(spec)
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('(') => {
                let index = if self.peek() == Some('?') {
                    // Only (?:...) is supported among the (?...) forms.
                    self.pos += 1;
                    if !self.eat(':') {
                        return Err(self.err("unsupported group flag (only (?:) allowed)"));
                    }
                    None
                } else {
                    let idx = self.next_group;
                    self.next_group += 1;
                    Some(idx)
                };
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(Ast::Group {
                    index,
                    node: Box::new(inner),
                })
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling repetition '{c}'"))),
            Some(c) => Ok(Ast::Literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class(ClassSet::digit())),
            Some('D') => Ok(Ast::Class(ClassSet::digit().negate())),
            Some('w') => Ok(Ast::Class(ClassSet::word())),
            Some('W') => Ok(Ast::Class(ClassSet::word().negate())),
            Some('s') => Ok(Ast::Class(ClassSet::space())),
            Some('S') => Ok(Ast::Class(ClassSet::space().negate())),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some('0') => Ok(Ast::Literal('\0')),
            Some(c) if !c.is_alphanumeric() => Ok(Ast::Literal(c)),
            Some(c) => Err(self.err(format!("unknown escape '\\{c}'"))),
            None => Err(self.err("trailing backslash")),
        }
    }

    fn class(&mut self) -> Result<Ast, PatternError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        // `]` first in a class is a literal.
        if self.eat(']') {
            ranges.push((']', ']'));
        }
        loop {
            let lo = match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(']') => break,
                Some('\\') => match self.class_escape()? {
                    ClassAtom::Char(c) => c,
                    ClassAtom::Set(set) => {
                        ranges.extend(set.ranges);
                        continue;
                    }
                },
                Some(c) => c,
            };
            // Possible range `lo-hi`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unclosed character class")),
                    Some('\\') => match self.class_escape()? {
                        ClassAtom::Char(c) => c,
                        ClassAtom::Set(_) => {
                            return Err(self.err("class shorthand cannot bound a range"))
                        }
                    },
                    Some(c) => c,
                };
                if hi < lo {
                    return Err(self.err("invalid range (hi < lo)"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class(ClassSet::new(ranges, negated)))
    }

    fn class_escape(&mut self) -> Result<ClassAtom, PatternError> {
        match self.bump() {
            Some('d') => Ok(ClassAtom::Set(ClassSet::digit())),
            Some('w') => Ok(ClassAtom::Set(ClassSet::word())),
            Some('s') => Ok(ClassAtom::Set(ClassSet::space())),
            Some('n') => Ok(ClassAtom::Char('\n')),
            Some('t') => Ok(ClassAtom::Char('\t')),
            Some('r') => Ok(ClassAtom::Char('\r')),
            Some(c) if !c.is_alphanumeric() => Ok(ClassAtom::Char(c)),
            Some(c) => Err(self.err(format!("unknown class escape '\\{c}'"))),
            None => Err(self.err("trailing backslash in class")),
        }
    }
}

enum ClassAtom {
    Char(char),
    Set(ClassSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ast {
        parse(s).unwrap()
    }

    fn bad(s: &str) -> PatternError {
        parse(s).unwrap_err()
    }

    #[test]
    fn literals_concat() {
        assert_eq!(
            p("ab"),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn empty_pattern_is_empty() {
        assert_eq!(p(""), Ast::Empty);
    }

    #[test]
    fn alternation_branches() {
        match p("a|b|c") {
            Ast::Alternate(bs) => assert_eq!(bs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_indices_assigned_in_order() {
        let ast = p("(a)(?:b)((c))");
        let mut indices = Vec::new();
        fn walk(a: &Ast, out: &mut Vec<Option<u32>>) {
            match a {
                Ast::Group { index, node } => {
                    out.push(*index);
                    walk(node, out);
                }
                Ast::Concat(v) | Ast::Alternate(v) => v.iter().for_each(|n| walk(n, out)),
                Ast::Repeat { node, .. } => walk(node, out),
                _ => {}
            }
        }
        walk(&ast, &mut indices);
        assert_eq!(indices, vec![Some(1), None, Some(2), Some(3)]);
    }

    #[test]
    fn counted_reps_parse() {
        match p("a{2,5}") {
            Ast::Repeat { min, max, .. } => {
                assert_eq!((min, max), (2, Some(5)));
            }
            other => panic!("{other:?}"),
        }
        match p("a{3,}") {
            Ast::Repeat { min, max, .. } => assert_eq!((min, max), (3, None)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn literal_brace_when_not_a_count() {
        assert_eq!(
            p("a{x"),
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('x')
            ])
        );
    }

    #[test]
    fn lazy_flag_parsed() {
        match p("a+?") {
            Ast::Repeat { greedy, .. } => assert!(!greedy),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_features() {
        match p("[a-c\\d_]") {
            Ast::Class(set) => {
                assert!(set.contains('b'));
                assert!(set.contains('7'));
                assert!(set.contains('_'));
                assert!(!set.contains('z'));
            }
            other => panic!("{other:?}"),
        }
        match p("[^a-z]") {
            Ast::Class(set) => {
                assert!(!set.contains('m'));
                assert!(set.contains('M'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn leading_bracket_literal_in_class() {
        match p("[]a]") {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        match p("[a-]") {
            Ast::Class(set) => {
                assert!(set.contains('a'));
                assert!(set.contains('-'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        bad("(a");
        bad("a)");
        bad("[a");
        bad("[z-a]");
        bad("*a");
        bad("a{5,2}");
        bad("\\q");
        bad("(?=x)");
        bad("a{2000}");
        bad("^*");
    }

    #[test]
    fn escaped_metachars_are_literals() {
        assert_eq!(
            p(r"\.\*\("),
            Ast::Concat(vec![
                Ast::Literal('.'),
                Ast::Literal('*'),
                Ast::Literal('(')
            ])
        );
    }
}
