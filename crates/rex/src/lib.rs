//! `rex` — a compact regular-expression engine for log ETL.
//!
//! The paper's batch-import pipeline parses raw console/network/application
//! logs "in search for known patterns for each event type (typically defined
//! as regular expressions)". This crate supplies those patterns without an
//! external dependency: a classic Thompson-NFA construction executed by a
//! Pike VM, giving linear-time matching with capture groups — no
//! catastrophic backtracking on hostile log lines.
//!
//! Supported syntax: literals, `.`, escapes (`\d \D \w \W \s \S \n \t \r`
//! and punctuation), character classes `[a-z0-9_]` / negated `[^...]`,
//! repetition `* + ? {n} {n,} {n,m}` (greedy and lazy `?` variants),
//! alternation `|`, capturing `(...)` and non-capturing `(?:...)` groups,
//! and anchors `^` / `$`.
//!
//! # Example
//! ```
//! use rex::Regex;
//!
//! let re = Regex::new(r"^\[(\d+)\] MCE bank (\d+): status ([0-9a-f]+)$").unwrap();
//! let caps = re.captures("[1498261304] MCE bank 4: status dead00beef").unwrap();
//! assert_eq!(caps.get(1), Some("1498261304"));
//! assert_eq!(caps.get(2), Some("4"));
//! assert_eq!(caps.get(3), Some("dead00beef"));
//! ```

pub mod ast;
pub mod compiler;
pub mod parser;
pub mod vm;

pub use parser::PatternError;

use compiler::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A successful match: the overall span plus capture-group spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captures<'t> {
    text: &'t str,
    /// Slot pairs: `slots[2k]`/`slots[2k+1]` are the start/end of group `k`.
    slots: Vec<Option<usize>>,
}

impl<'t> Captures<'t> {
    /// The text of capture group `idx` (0 is the whole match).
    pub fn get(&self, idx: usize) -> Option<&'t str> {
        let (s, e) = self.span(idx)?;
        Some(&self.text[s..e])
    }

    /// The byte span of capture group `idx`.
    pub fn span(&self, idx: usize) -> Option<(usize, usize)> {
        let s = (*self.slots.get(idx * 2)?)?;
        let e = (*self.slots.get(idx * 2 + 1)?)?;
        Some((s, e))
    }

    /// Number of groups, counting group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// True when there are no capture slots (never the case for a match).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, PatternError> {
        let ast = parser::parse(pattern)?;
        let program = compiler::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_owned(),
            program,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, counting the implicit group 0.
    pub fn group_count(&self) -> usize {
        self.program.groups
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        vm::search(&self.program, text, 0).is_some()
    }

    /// Leftmost match: returns the byte span.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        self.captures(text)?.span(0)
    }

    /// Leftmost match with capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        self.captures_at(text, 0)
    }

    /// Leftmost match with captures, starting the scan at byte `start`.
    pub fn captures_at<'t>(&self, text: &'t str, start: usize) -> Option<Captures<'t>> {
        let slots = vm::search(&self.program, text, start)?;
        Some(Captures { text, slots })
    }

    /// Iterator over all non-overlapping matches.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            text,
            pos: 0,
        }
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    text: &'t str,
    pos: usize,
}

impl<'r, 't> Iterator for FindIter<'r, 't> {
    type Item = Captures<'t>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos > self.text.len() {
            return None;
        }
        let caps = self.re.captures_at(self.text, self.pos)?;
        let (s, e) = caps.span(0)?;
        // Advance past the match; empty matches advance one char to
        // guarantee progress.
        self.pos = if e > s {
            e
        } else {
            next_char_boundary(self.text, e)
        };
        Some(caps)
    }
}

fn next_char_boundary(text: &str, pos: usize) -> usize {
    let mut p = pos + 1;
    while p < text.len() && !text.is_char_boundary(p) {
        p += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_matching() {
        let re = Regex::new("ab+c").unwrap();
        assert!(re.is_match("xxabbbcyy"));
        assert!(!re.is_match("ac"));
        assert_eq!(re.find("xxabbbcyy"), Some((2, 7)));
    }

    #[test]
    fn captures_index_and_span() {
        let re = Regex::new(r"(\w+)=(\d+)").unwrap();
        let caps = re.captures("retries=17;").unwrap();
        assert_eq!(caps.get(0), Some("retries=17"));
        assert_eq!(caps.get(1), Some("retries"));
        assert_eq!(caps.get(2), Some("17"));
        assert_eq!(caps.span(2), Some((8, 10)));
        assert_eq!(caps.len(), 3);
        assert_eq!(caps.get(3), None);
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let nums: Vec<_> = re
            .find_iter("a1 b22 c333")
            .map(|c| c.get(0).unwrap().to_owned())
            .collect();
        assert_eq!(nums, vec!["1", "22", "333"]);
    }

    #[test]
    fn empty_match_progress() {
        let re = Regex::new("a*").unwrap();
        // Must terminate and visit every position once.
        let n = re.find_iter("bbb").count();
        assert_eq!(n, 4); // one empty match per position incl. end
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("xabc"));
        assert!(!re.is_match("abcx"));
    }

    #[test]
    fn unicode_text_is_safe() {
        let re = Regex::new("é+").unwrap();
        assert_eq!(re.find("café éé"), Some((3, 5)));
        let all: Vec<_> = re.find_iter("café éé").collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+b on a^40 would take years with backtracking.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(40);
        assert!(!re.is_match(&text));
    }

    #[test]
    fn group_count_reported() {
        let re = Regex::new(r"(a)(?:b)(c(d))").unwrap();
        assert_eq!(re.group_count(), 4); // groups 0,1,2,3
    }

    #[test]
    fn lazy_repetition() {
        let greedy = Regex::new(r#""(.*)""#).unwrap();
        let lazy = Regex::new(r#""(.*?)""#).unwrap();
        let text = r#"say "a" and "b" now"#;
        assert_eq!(greedy.captures(text).unwrap().get(1), Some(r#"a" and "b"#));
        assert_eq!(lazy.captures(text).unwrap().get(1), Some("a"));
    }

    #[test]
    fn counted_repetition() {
        let re = Regex::new(r"^a{2,3}$").unwrap();
        assert!(!re.is_match("a"));
        assert!(re.is_match("aa"));
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aaaa"));
        let exact = Regex::new(r"^[0-9a-f]{4}$").unwrap();
        assert!(exact.is_match("beef"));
        assert!(!exact.is_match("beeff"));
    }
}
