//! Pike VM: executes a compiled program over text in O(len × program) time
//! while tracking capture slots.

use crate::compiler::{Instr, Program};
use std::rc::Rc;

type Slots = Rc<Vec<Option<usize>>>;

struct Thread {
    pc: usize,
    slots: Slots,
}

/// Runs an unanchored leftmost search over `text` starting at byte `start`.
/// Returns capture slots on success (`2 × groups` entries).
pub fn search(prog: &Program, text: &str, start: usize) -> Option<Vec<Option<usize>>> {
    if start > text.len() || !text.is_char_boundary(start) {
        return None;
    }
    let nslots = prog.groups * 2;
    let mut clist: Vec<Thread> = Vec::new();
    let mut nlist: Vec<Thread> = Vec::new();
    // Generation marks prevent queueing the same pc twice per position.
    let mut mark = vec![usize::MAX; prog.instrs.len()];
    let mut generation = 0usize;
    let mut matched: Option<Vec<Option<usize>>> = None;

    let mut iter = text[start..].char_indices().map(|(i, c)| (start + i, c));
    let mut next = iter.next();
    let mut pos = start;

    loop {
        if matched.is_none() {
            // Leftmost semantics: seed a fresh attempt at every boundary
            // until something matches. Seeding after live threads keeps
            // earlier attempts at higher priority.
            add_thread(
                prog,
                &mut clist,
                &mut mark,
                generation,
                Thread {
                    pc: 0,
                    slots: Rc::new(vec![None; nslots]),
                },
                pos,
                text,
            );
        }

        let ch = next.map(|(_, c)| c);
        for th in &clist {
            match &prog.instrs[th.pc] {
                Instr::Char(pred) => {
                    if let Some(c) = ch {
                        if pred.matches(c) {
                            nlist.push(Thread {
                                pc: th.pc + 1,
                                slots: Rc::clone(&th.slots),
                            });
                        }
                    }
                }
                Instr::Match => {
                    // Every live thread ahead of this one has higher
                    // priority (earlier start), so overwriting is correct;
                    // threads behind it are cut.
                    matched = Some(th.slots.as_ref().clone());
                    break;
                }
                // Epsilon instructions never appear here: add_thread
                // resolved them when the thread was queued.
                other => unreachable!("epsilon instr {other:?} in run list"),
            }
        }

        generation += 1;
        clist.clear();

        // The end-of-text boundary was just processed: finished.
        let Some((i, c)) = next else { break };
        let next_pos = i + c.len_utf8();
        for th in nlist.drain(..) {
            add_thread(prog, &mut clist, &mut mark, generation, th, next_pos, text);
        }
        if clist.is_empty() && matched.is_some() {
            break;
        }
        pos = next_pos;
        next = iter.next();
    }
    matched
}

/// Adds a thread, following epsilon transitions (`Jmp`, `Split`, `Save`,
/// asserts) until character or match instructions are reached. Split pushes
/// its low-priority branch on an explicit stack, so resolved threads land in
/// `list` in priority order.
fn add_thread(
    prog: &Program,
    list: &mut Vec<Thread>,
    mark: &mut [usize],
    generation: usize,
    th: Thread,
    pos: usize,
    text: &str,
) {
    let mut stack = vec![th];
    while let Some(mut th) = stack.pop() {
        loop {
            if mark[th.pc] == generation {
                break;
            }
            mark[th.pc] = generation;
            match &prog.instrs[th.pc] {
                Instr::Jmp(t) => th.pc = *t,
                Instr::Split(a, b) => {
                    stack.push(Thread {
                        pc: *b,
                        slots: Rc::clone(&th.slots),
                    });
                    th.pc = *a;
                }
                Instr::Save(slot) => {
                    let slots = Rc::make_mut(&mut th.slots);
                    slots[*slot] = Some(pos);
                    th.pc += 1;
                }
                Instr::AssertStart => {
                    if pos == 0 {
                        th.pc += 1;
                    } else {
                        break;
                    }
                }
                Instr::AssertEnd => {
                    if pos == text.len() {
                        th.pc += 1;
                    } else {
                        break;
                    }
                }
                Instr::Char(_) | Instr::Match => {
                    list.push(Thread {
                        pc: th.pc,
                        slots: Rc::clone(&th.slots),
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compiler::compile;
    use crate::parser::parse;

    fn spans(pattern: &str, text: &str) -> Option<(usize, usize)> {
        let prog = compile(&parse(pattern).unwrap());
        let slots = super::search(&prog, text, 0)?;
        Some((slots[0].unwrap(), slots[1].unwrap()))
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(spans("ab|b", "xabx"), Some((1, 3)));
        assert_eq!(spans("b|ab", "xabx"), Some((1, 3))); // leftmost beats alt order
    }

    #[test]
    fn greedy_consumes_most() {
        assert_eq!(spans("a+", "xaaa"), Some((1, 4)));
        assert_eq!(spans("a*", "aaa"), Some((0, 3)));
    }

    #[test]
    fn lazy_consumes_least() {
        assert_eq!(spans("a+?", "xaaa"), Some((1, 2)));
    }

    #[test]
    fn anchored_end() {
        assert_eq!(spans("a+$", "aabaa"), Some((3, 5)));
        assert_eq!(spans("^a+", "aabaa"), Some((0, 2)));
    }

    #[test]
    fn search_from_offset() {
        let prog = compile(&parse("a").unwrap());
        let slots = super::search(&prog, "abca", 1).unwrap();
        assert_eq!(slots[0], Some(3));
    }

    #[test]
    fn offset_past_end_is_none() {
        let prog = compile(&parse("a").unwrap());
        assert!(super::search(&prog, "abc", 10).is_none());
    }

    #[test]
    fn offset_mid_char_is_none() {
        let prog = compile(&parse("a").unwrap());
        assert!(super::search(&prog, "é a", 1).is_none());
    }

    #[test]
    fn nested_group_slots() {
        let prog = compile(&parse("(a(b)c)").unwrap());
        let slots = super::search(&prog, "zabcz", 0).unwrap();
        assert_eq!(slots[2], Some(1)); // group 1 start
        assert_eq!(slots[3], Some(4)); // group 1 end
        assert_eq!(slots[4], Some(2)); // group 2 start
        assert_eq!(slots[5], Some(3)); // group 2 end
    }

    #[test]
    fn group_in_unmatched_branch_stays_none() {
        let prog = compile(&parse("(x)|(y)").unwrap());
        let slots = super::search(&prog, "y", 0).unwrap();
        assert_eq!(slots[2], None);
        assert_eq!(slots[4], Some(0));
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(spans("", "abc"), Some((0, 0)));
        assert_eq!(spans("", ""), Some((0, 0)));
    }

    #[test]
    fn no_match_reports_none() {
        assert_eq!(spans("zz", "aaaa"), None);
        assert_eq!(spans("a", ""), None);
    }

    #[test]
    fn alternation_with_classes() {
        assert_eq!(spans(r"[0-9]+|[a-z]+", "___abc12"), Some((3, 6)));
    }

    #[test]
    fn repeated_group_captures_last_iteration() {
        let prog = compile(&parse("(ab)+").unwrap());
        let slots = super::search(&prog, "ababab", 0).unwrap();
        assert_eq!((slots[0], slots[1]), (Some(0), Some(6)));
        assert_eq!((slots[2], slots[3]), (Some(4), Some(6)));
    }
}
