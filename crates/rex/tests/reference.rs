//! Property tests: the Pike VM agrees with a straightforward backtracking
//! interpreter of the same AST on randomly generated patterns and texts.

use proptest::prelude::*;
use rex::ast::Ast;
use rex::parser::parse;
use rex::Regex;

/// Backtracking reference: calls `k(end)` for every possible match end in
/// thread-priority order; returns the first accepted end.
fn match_node(ast: &Ast, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match ast {
        Ast::Empty => k(pos),
        Ast::Literal(c) => pos < text.len() && text[pos] == *c && k(pos + 1),
        Ast::AnyChar => pos < text.len() && text[pos] != '\n' && k(pos + 1),
        Ast::Class(set) => pos < text.len() && set.contains(text[pos]) && k(pos + 1),
        Ast::StartAnchor => pos == 0 && k(pos),
        Ast::EndAnchor => pos == text.len() && k(pos),
        Ast::Group { node, .. } => match_node(node, text, pos, k),
        Ast::Concat(items) => match_seq(items, text, pos, k),
        Ast::Alternate(branches) => branches.iter().any(|b| match_node(b, text, pos, k)),
        Ast::Repeat {
            node,
            min,
            max,
            greedy,
        } => match_rep(node, *min, *max, *greedy, text, pos, k),
    }
}

fn match_seq(items: &[Ast], text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match items.split_first() {
        None => k(pos),
        Some((head, rest)) => match_node(head, text, pos, &mut |p| match_seq(rest, text, p, k)),
    }
}

fn match_rep(
    node: &Ast,
    min: u32,
    max: Option<u32>,
    greedy: bool,
    text: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if min > 0 {
        return match_node(node, text, pos, &mut |p| {
            match_rep(node, min - 1, max.map(|m| m - 1), greedy, text, p, k)
        });
    }
    if max == Some(0) {
        return k(pos);
    }
    let more = |k2: &mut dyn FnMut(usize) -> bool, from: usize| {
        match_node(node, text, from, &mut |p| {
            // Require progress on unbounded repeats of possibly-empty nodes.
            p != from && match_rep(node, 0, max.map(|m| m - 1), greedy, text, p, k2)
        })
    };
    // Not actually identical: greediness is the short-circuit order.
    #[allow(clippy::if_same_then_else)]
    if greedy {
        more(k, pos) || k(pos)
    } else {
        k(pos) || more(k, pos)
    }
}

/// Reference leftmost match span.
fn reference_find(pattern: &str, text: &str) -> Option<(usize, usize)> {
    let ast = parse(pattern).unwrap();
    let chars: Vec<char> = text.chars().collect();
    // Map char index -> byte offset for comparison with the VM.
    let mut byte_at: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    let mut b = 0;
    for c in &chars {
        byte_at.push(b);
        b += c.len_utf8();
    }
    byte_at.push(b);
    for start in 0..=chars.len() {
        let mut found: Option<usize> = None;
        match_node(&ast, &chars, start, &mut |end| {
            found = Some(end);
            true
        });
        if let Some(end) = found {
            return Some((byte_at[start], byte_at[end]));
        }
    }
    None
}

/// Small random patterns over {a, b} with the full operator set.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just(".".to_owned()),
        Just("[ab]".to_owned()),
        Just("[^a]".to_owned()),
        Just("\\w".to_owned()),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(?:{a}|{b})")),
            inner.clone().prop_map(|a| format!("(?:{a})*")),
            inner.clone().prop_map(|a| format!("(?:{a})+")),
            inner.clone().prop_map(|a| format!("(?:{a})?")),
            inner.clone().prop_map(|a| format!("(?:{a}){{1,2}}")),
            inner.prop_map(|a| format!("({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_agrees_with_backtracker(pattern in arb_pattern(), text in "[ab]{0,10}") {
        let re = Regex::new(&pattern).unwrap();
        let expected = reference_find(&pattern, &text);
        let actual = re.find(&text);
        prop_assert_eq!(actual, expected, "pattern {:?} on {:?}", pattern, text);
    }

    #[test]
    fn is_match_equals_find_some(pattern in arb_pattern(), text in "[ab]{0,10}") {
        let re = Regex::new(&pattern).unwrap();
        prop_assert_eq!(re.is_match(&text), re.find(&text).is_some());
    }

    #[test]
    fn anchored_pattern_agrees(pattern in arb_pattern(), text in "[ab]{0,8}") {
        let anchored = format!("^(?:{pattern})$");
        let re = Regex::new(&anchored).unwrap();
        let expected = reference_find(&anchored, &text);
        prop_assert_eq!(re.find(&text), expected);
    }

    #[test]
    fn compile_never_panics_on_random_input(pattern in "\\PC{0,20}") {
        let _ = Regex::new(&pattern);
    }

    #[test]
    fn matching_never_panics(pattern in arb_pattern(), text in "\\PC{0,20}") {
        let re = Regex::new(&pattern).unwrap();
        let _ = re.captures(&text);
    }
}
