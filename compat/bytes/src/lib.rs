//! Offline shim for `bytes`.
//!
//! Provides a cheaply-clonable immutable byte buffer with the subset of the
//! `bytes::Bytes` API the workspace uses (`copy_from_slice`, `from_static`,
//! slice deref, ordering/hashing). Backed by `Arc<[u8]>` so clones are
//! refcount bumps, like the real crate.

use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    // The trait impl below provides `as_ref`; an inherent method of the
    // same name would shadow it and trips clippy's same_name_method lint.

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::from(vec![1, 2, 3]));
        let s = Bytes::from_static(b"\x00\x01");
        assert!(s < b);
        assert_eq!(format!("{s:?}"), "b\"\\x00\\x01\"");
    }
}
