//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, sample sizes, and element throughput. It collects
//! `sample_size` timed samples per benchmark (auto-batching very fast
//! routines so a sample is long enough to time) and prints
//! min / median / mean. No plots, no statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Anything `bench_function` accepts as an id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_owned(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        let label = if self.name.is_empty() {
            id.label()
        } else {
            format!("{}/{}", self.name, id.label())
        };
        if samples.is_empty() {
            println!("{label:<50} no samples recorded");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let mut line = format!(
            "{label:<50} time: [min {} median {} mean {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean)
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
            line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
            line.push_str(&format!(
                "  thrpt: {:.1} MiB/s",
                per_sec / (1024.0 * 1024.0)
            ));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, batching enough calls per sample that very fast
    /// routines still produce measurable samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations reach ~1 ms per sample?
        let t = Instant::now();
        black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(20));
        let reps = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..reps {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / reps);
        }
    }

    /// Times `routine` on a fresh untimed `setup()` product per sample.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Declares `pub fn $name()` running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        group.finish();
        assert!(count >= 5);
    }

    #[test]
    fn iter_with_setup_passes_fresh_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_with_setup(|| (0..n).collect::<Vec<u64>>(), |v| v.iter().sum::<u64>())
        });
        group.finish();
    }
}
