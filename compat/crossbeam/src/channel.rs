//! Unbounded MPMC channels with a biased two-way select.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

pub use crate::select;

/// Error returned by `send` when every receiver has been dropped.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by `recv` when the channel is empty and disconnected.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by `recv_timeout`.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => f.write_str("timed out waiting on receive operation"),
            Self::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by `try_recv`.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Waker a `select!` registers with both channels so a push on either one
/// (or a disconnect) wakes the selecting thread.
pub struct Waker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn signal(&self) {
        *self.ready.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*ready {
            ready = self.cv.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
        *ready = false;
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    watchers: Vec<Weak<Waker>>,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wake blocked receivers and any registered selectors.
    fn notify(state: &mut State<T>, cv: &Condvar, all: bool) {
        if all {
            cv.notify_all();
        } else {
            cv.notify_one();
        }
        state.watchers.retain(|w| match w.upgrade() {
            Some(w) => {
                w.signal();
                true
            }
            None => false,
        });
    }
}

/// Creates an unbounded channel; both halves are cloneable (MPMC).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            watchers: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        Chan::notify(&mut state, &self.chan.cv, false);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Disconnection must wake everyone so they can observe it.
            Chan::notify(&mut state, &self.chan.cv, true);
        }
    }
}

pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.chan.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.lock();
        if let Some(v) = state.queue.pop_front() {
            Ok(v)
        } else if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn is_empty(&self) -> bool {
        self.chan.lock().queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    fn register(&self, waker: &Arc<Waker>) {
        self.chan.lock().watchers.push(Arc::downgrade(waker));
    }

    fn unregister(&self, waker: &Arc<Waker>) {
        self.chan
            .lock()
            .watchers
            .retain(|w| !w.ptr_eq(&Arc::downgrade(waker)));
    }

    /// Non-blocking readiness probe: a message, or `Err` once disconnected.
    fn poll(&self) -> Option<Result<T, RecvError>> {
        let mut state = self.chan.lock();
        if let Some(v) = state.queue.pop_front() {
            Some(Ok(v))
        } else if state.senders == 0 {
            Some(Err(RecvError))
        } else {
            None
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.lock().receivers -= 1;
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Which of the two receivers a [`select2`] resolved to.
pub enum Selected<A, B> {
    First(Result<A, RecvError>),
    Second(Result<B, RecvError>),
}

/// Blocks until either receiver is ready (has a message or is disconnected),
/// biased toward the first. Backs the two-arm `select!` macro.
pub fn select2<A, B>(first: &Receiver<A>, second: &Receiver<B>) -> Selected<A, B> {
    // Fast path: no registration needed if something is already ready.
    if let Some(res) = first.poll() {
        return Selected::First(res);
    }
    if let Some(res) = second.poll() {
        return Selected::Second(res);
    }
    let waker = Waker::new();
    first.register(&waker);
    second.register(&waker);
    let out = loop {
        if let Some(res) = first.poll() {
            break Selected::First(res);
        }
        if let Some(res) = second.poll() {
            break Selected::Second(res);
        }
        waker.wait();
    };
    first.unregister(&waker);
    second.unregister(&waker);
    out
}

/// Two-arm `select!` over receive operations, biased toward the first arm.
#[macro_export]
macro_rules! select {
    (
        recv($rx1:expr) -> $res1:pat => $body1:expr,
        recv($rx2:expr) -> $res2:pat => $body2:expr $(,)?
    ) => {
        match $crate::channel::select2(&$rx1, &$rx2) {
            $crate::channel::Selected::First(r) => {
                let $res1 = r;
                $body1
            }
            $crate::channel::Selected::Second(r) => {
                let $res2 = r;
                $body2
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h = thread::spawn(move || rx2.recv().unwrap());
        tx.send(42u32).unwrap();
        let got = h.join().unwrap();
        assert!(got == 42 || rx.try_recv() == Ok(42));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn select_is_biased_to_first_arm() {
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        tx1.send("pinned").unwrap();
        tx2.send("shared").unwrap();
        let got = crate::select! {
            recv(rx1) -> v => v.unwrap(),
            recv(rx2) -> v => v.unwrap(),
        };
        assert_eq!(got, "pinned");
    }

    #[test]
    fn select_wakes_on_late_message() {
        let (tx1, rx1) = unbounded::<i32>();
        let (tx2, rx2) = unbounded::<i32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx2.send(9).unwrap();
        });
        let got = crate::select! {
            recv(rx1) -> v => v,
            recv(rx2) -> v => v,
        };
        assert_eq!(got, Ok(9));
        h.join().unwrap();
        drop(tx1);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx1, rx1) = unbounded::<i32>();
        let (tx2, rx2) = unbounded::<i32>();
        drop(tx2);
        let disconnected = crate::select! {
            recv(rx1) -> _v => false,
            recv(rx2) -> v => v.is_err(),
        };
        assert!(disconnected);
        drop(tx1);
    }
}
