//! Offline shim for `crossbeam`.
//!
//! Implements the `crossbeam::channel` subset the workspace uses: unbounded
//! MPMC channels (`Sender`/`Receiver` both `Clone`), blocking `recv`,
//! `recv_timeout`, iteration, and a two-receiver `select!` that is biased
//! toward its first arm (the executor pool drains pinned work first).
//!
//! Channels are a `Mutex<VecDeque>` plus a `Condvar`. To let `select!`
//! block on two channels at once without spinning, each channel keeps a
//! list of external wakers that are signalled alongside its own condvar.

pub mod channel;
