//! String generation from a small regex subset: literals, `[...]` classes
//! (ranges, negation over printable ASCII), `\PC`, `\w`, `\d`, `\s`, `.`,
//! and the quantifiers `{m,n}`, `{n}`, `*`, `+`, `?`.

use crate::test_runner::TestRng;

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Printable ASCII plus a few multibyte chars — stands in for `\PC`
/// (any non-control codepoint).
fn non_control() -> Vec<char> {
    let mut v: Vec<char> = (' '..='~').collect();
    v.extend(['é', 'ß', 'λ', 'Ω', '日', '本', '±', '—']);
    v
}

fn word_chars() -> Vec<char> {
    let mut v: Vec<char> = ('a'..='z').collect();
    v.extend('A'..='Z');
    v.extend('0'..='9');
    v.push('_');
    v
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let negate = chars.get(i) == Some(&'^');
                if negate {
                    i += 1;
                }
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        set.extend(escape_class(chars[i]));
                        i += 1;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern}");
                i += 1; // closing ']'
                if negate {
                    (' '..='~').filter(|c| !set.contains(c)).collect()
                } else {
                    set
                }
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in {pattern}");
                let c = chars[i];
                i += 1;
                if c == 'P' || c == 'p' {
                    // Single-letter Unicode category (`\PC`); we only model
                    // "not control".
                    i += 1;
                    non_control()
                } else {
                    escape_class(c)
                }
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn escape_class(c: char) -> Vec<char> {
    match c {
        'w' => word_chars(),
        'd' => ('0'..='9').collect(),
        's' => vec![' ', '\t', '\n'],
        'n' => vec!['\n'],
        't' => vec!['\t'],
        'r' => vec!['\r'],
        other => vec![other],
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                )
            } else {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        }
        Some('*') => {
            *i += 1;
            (0, 4)
        }
        Some('+') => {
            *i += 1;
            (1, 4)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

/// Generates a string matching `pattern` (within the supported subset).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn class_with_range_and_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,6}", &mut r);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literal_prefix_with_digits() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("k[0-9]{1,2}", &mut r);
            assert!(s.starts_with('k'));
            assert!((2..=3).contains(&s.len()), "{s:?}");
            assert!(s[1..].bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_space_through_tilde() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{0,20}", &mut r);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn non_control_category() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,60}", &mut r);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_count_and_alternatives() {
        let mut r = rng();
        let s = generate("[ab]{8}", &mut r);
        assert_eq!(s.len(), 8);
        assert!(s.bytes().all(|b| b == b'a' || b == b'b'));
    }
}
