//! Offline shim for `proptest`.
//!
//! A generate-only property-testing harness with proptest's API shape:
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_recursive`,
//! `prop_oneof!`, `Just`, `any::<T>()`, collection strategies, and
//! string-from-regex strategies (a small regex subset: literals, classes
//! with ranges, `\PC`, `\w`, `\d`, `\s`, `.`, and `{m,n}` repetition).
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs reachable via the deterministic per-test seed), and
//! case generation is seeded from the test name so runs are reproducible.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (module-style access to strategies).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
