//! Deterministic RNG and config for the generate-only harness.

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// splitmix64 generator seeded from the test name, so every run of a given
/// test explores the same sequence of cases (reproducible failures without
/// persisted regression files).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi)` over i128 to cover every integer width.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other_test");
        assert_ne!(TestRng::deterministic("some_test").next_u64(), c.next_u64());
    }

    #[test]
    fn int_in_bounds() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = r.int_in(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }
}
