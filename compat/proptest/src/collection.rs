//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::{BoxedStrategy, Strategy};
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive size bound accepted by the collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.lo < self.hi);
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    let size = size.into();
    BoxedStrategy::from_fn(move |rng| {
        let n = size.pick(rng);
        (0..n).map(|_| element.sample(rng)).collect()
    })
}

pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<BTreeSet<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Ord + 'static,
{
    let size = size.into();
    BoxedStrategy::from_fn(move |rng| {
        let n = size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates collapse, so keep sampling (bounded) to reach the
        // requested cardinality over small domains.
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(element.sample(rng));
            attempts += 1;
        }
        out
    })
}

pub fn btree_map<K, V>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
where
    K: Strategy + 'static,
    V: Strategy + 'static,
    K::Value: Ord + 'static,
    V::Value: 'static,
{
    let size = size.into();
    BoxedStrategy::from_fn(move |rng| {
        let n = size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(keys.sample(rng), values.sample(rng));
            attempts += 1;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0..100i64, 2..5);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_reaches_min_cardinality() {
        let s = btree_set(0i64..100, 2..20);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let set = s.sample(&mut rng);
            assert!(set.len() >= 2, "len {}", set.len());
        }
    }

    #[test]
    fn btree_map_keys_unique() {
        let s = btree_map("[a-z]{1,6}", 0..10i32, 0..6);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let m = s.sample(&mut rng);
            assert!(m.len() < 6);
        }
    }
}
