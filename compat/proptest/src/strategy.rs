//! Generate-only strategies: the `Strategy` trait, combinators, and the
//! built-in strategy impls (ranges, tuples, regex-string literals).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A value generator. Unlike upstream proptest there is no shrinking: a
/// strategy is just a sampling function over the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| s.sample(rng)),
        }
    }

    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| f(s.sample(rng))),
        }
    }

    /// Builds recursion by expanding the strategy `depth` times; each level
    /// flips between a leaf and one application of `expand`, so generated
    /// values nest at most `depth` deep. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = expand(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy {
                gen: Rc::new(move |rng| {
                    if rng.next_u64() & 1 == 0 {
                        l.sample(rng)
                    } else {
                        deeper.sample(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// Type-erased strategy; every combinator returns one of these.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, spanning many magnitudes.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.int_in(-60, 61) as i32;
        m * (2f64).powi(e)
    }
}

pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy::from_fn(|rng| T::arbitrary(rng))
}

/// Weighted choice over same-valued strategies; backs `prop_oneof!`.
pub fn weighted_union<T: 'static>(choices: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! requires a positive total weight");
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &choices {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    })
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.int_in(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// String literals are regex strategies, e.g. `"[a-z]{1,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = (0..6i64, 1usize..4, any::<bool>()).sample(&mut rng);
            assert!((0..6).contains(&v.0));
            assert!((1..4).contains(&v.1));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![
            8 => (0..10i64).prop_map(|v| v * 2),
            1 => Just(1000i64),
        ];
        let mut saw_big = false;
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!(v == 1000 || (v % 2 == 0 && (0..20).contains(&v)));
            saw_big |= v == 1000;
        }
        assert!(saw_big, "low-weight arm never chosen");
    }

    #[test]
    fn prop_recursive_nests_but_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0..5i64)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(T::Node)
            });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut rng)) <= 3);
        }
    }
}
