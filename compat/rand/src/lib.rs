//! Offline shim for `rand`.
//!
//! Deterministic xoshiro256** generator behind the `rand` API subset the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen_range` (half-open and inclusive integer/float
//! ranges), `gen_bool`, and `gen::<T>()`. The stream differs from upstream
//! `rand` — everything in-repo that consumes it only requires determinism
//! for a fixed seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Seeding entry point (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Raw-output half of the generator, object-safe.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `gen::<T>()` can produce.
pub trait Standard {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10..20i64);
            assert!((10..20).contains(&x));
            let y = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&y));
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let n: i64 = r.gen_range(-50..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn gen_produces_each_type() {
        let mut r = StdRng::seed_from_u64(9);
        let _: u16 = r.gen();
        let _: u32 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
